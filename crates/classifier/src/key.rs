//! Canonical trace keys: a 128-bit fingerprint of everything the
//! classifier's run *determines* — the per-iteration partition trace, the
//! label contents, the class-ordered tag multiset, the node count, and the
//! span.
//!
//! Two configurations with equal [`CanonicalKey`]s drive `Classifier`
//! through bit-identical runs: same class vectors every iteration, same
//! labels (by content), same exit verdict, and therefore the same compiled
//! canonical lists `L_1 … L_{T+1}` and the same [`ClassifySummary`]. That
//! makes the key a sound memoization handle for the classify + compile
//! pipeline (the schedule cache in `anon-radio`'s core crate): a
//! canonical-key hit may reuse the cached schedule verbatim.
//!
//! ## Why label *contents*, not interned ids
//!
//! The fast engine interns labels into per-workspace ids, and the
//! [`LabelInterner`](crate::ClassifierWorkspace) only guarantees
//! same-content ⟺ same-id *within one workspace run*. Ids depend on
//! interning order, which depends on which configurations the workspace
//! classified before. The key therefore folds the per-label content hash
//! (the interner's stored FxHash column, recomputed on demand for the
//! reference engine's owned labels) via
//! [`IterationView::label_hash`](crate::IterationView::label_hash) — so
//! keys derived in different workspaces, or in the same workspace at
//! different times, agree exactly.
//!
//! ## Collision budget
//!
//! The key is two independent 64-bit FxHash lanes over the same word
//! stream (the second lane is seeded differently and folds a mixed copy of
//! each word). Inputs are locally generated, never adversarial, so the
//! rustc-style birthday bound applies: ~2⁻⁶⁴ per pair of distinct traces —
//! negligible across any realizable campaign.

use std::hash::Hasher;

use radio_graph::Configuration;
use radio_util::fxhash::FxHasher;

use crate::outcome::Engine;
use crate::workspace::{ClassifierWorkspace, ClassifySummary, IterationView, RecordSink};

/// A 128-bit canonical trace key (see the module docs for the contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    lo: u64,
    hi: u64,
}

impl CanonicalKey {
    /// The key as a single 128-bit integer (map keys, hex rendering).
    pub fn bits(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Seed of the second hash lane (the 64-bit golden-ratio constant); lane
/// one starts from the FxHash default state.
const LANE_HI_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A [`RecordSink`] that folds every iteration of a classification into a
/// [`CanonicalKey`] — per node in node order, `(class, label content
/// hash)`, plus the iteration index and class count. Finish with
/// [`KeySink::finish`], which mixes in the node count, the span, and the
/// class-ordered tag multiset of the final partition.
///
/// Folding *every* iteration (not only the final pass) makes the key a
/// strict superset of the stable partition: equal keys certify the entire
/// refinement trace, which is exactly what schedule compilation consumes.
#[derive(Debug)]
pub struct KeySink {
    lane_lo: FxHasher,
    lane_hi: FxHasher,
    /// Classes after the most recent iteration (overwritten each pass; the
    /// last write is the final partition `finish` pairs with the tags).
    final_classes: Vec<u32>,
}

impl Default for KeySink {
    fn default() -> KeySink {
        let mut lane_hi = FxHasher::default();
        lane_hi.write_u64(LANE_HI_SEED);
        KeySink {
            lane_lo: FxHasher::default(),
            lane_hi,
            final_classes: Vec::new(),
        }
    }
}

impl KeySink {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.lane_lo.write_u64(word);
        // The per-word maps of FxHash are bijections, so identical word
        // streams into differently-seeded lanes are not fully independent;
        // mixing the word decorrelates the two lanes' collision sets.
        self.lane_hi.write_u64(word.rotate_left(32) ^ LANE_HI_SEED);
    }

    /// Completes the key for the configuration the sink just watched being
    /// classified: folds `n`, `σ`, and the `(final class, tag)` multiset
    /// in sorted order.
    pub fn finish(mut self, config: &Configuration) -> CanonicalKey {
        let n = config.size();
        assert_eq!(
            self.final_classes.len(),
            n,
            "KeySink::finish needs the classification of this configuration"
        );
        self.fold(n as u64);
        self.fold(config.span());
        let mut pairs: Vec<(u32, u64)> = (0..n)
            .map(|v| (self.final_classes[v], config.tag(v as radio_graph::NodeId)))
            .collect();
        pairs.sort_unstable();
        for (class, tag) in pairs {
            self.fold(class as u64);
            self.fold(tag);
        }
        CanonicalKey {
            lo: self.lane_lo.finish(),
            hi: self.lane_hi.finish(),
        }
    }
}

impl RecordSink for KeySink {
    fn record(&mut self, iteration: usize, view: IterationView<'_>) {
        self.fold(iteration as u64);
        self.fold(view.num_classes() as u64);
        let n = view.len() as radio_graph::NodeId;
        for v in 0..n {
            self.fold(view.class_of(v) as u64);
            self.fold(view.label_hash(v));
        }
        self.final_classes.clear();
        self.final_classes.extend((0..n).map(|v| view.class_of(v)));
    }
}

/// Classifies `config` (fast engine, record-free otherwise) and returns
/// its canonical trace key alongside the summary — the standalone key
/// derivation used by key-stability tests and external cache layers.
pub fn canonical_key_in(
    workspace: &mut ClassifierWorkspace,
    config: &Configuration,
) -> (ClassifySummary, CanonicalKey) {
    let mut sink = KeySink::default();
    let summary = workspace.classify_with_sink(config, Engine::Fast, &mut sink);
    (summary, sink.finish(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, tags, Configuration};
    use radio_util::rng::rng_from;

    #[test]
    fn keys_are_deterministic() {
        let c = families::h_m(3);
        let mut ws = ClassifierWorkspace::new();
        let (s1, k1) = canonical_key_in(&mut ws, &c);
        let (s2, k2) = canonical_key_in(&mut ws, &c);
        assert_eq!(k1, k2);
        assert_eq!(s1, s2);
        assert_ne!(k1.bits(), 0);
    }

    #[test]
    fn keys_are_stable_across_diverged_workspaces() {
        // ws_a interns labels for other configurations first, so its ids
        // for the probe configuration differ from a fresh workspace's —
        // the content-hash contract must hide that entirely.
        let probe = families::g_m(3);
        let mut ws_a = ClassifierWorkspace::new();
        for warmup in [families::h_m(7), families::s_m(4), families::g_m(2)] {
            let _ = canonical_key_in(&mut ws_a, &warmup);
        }
        let mut ws_b = ClassifierWorkspace::new();
        let (_, key_a) = canonical_key_in(&mut ws_a, &probe);
        let (_, key_b) = canonical_key_in(&mut ws_b, &probe);
        assert_eq!(key_a, key_b);
    }

    #[test]
    fn keys_agree_between_engines() {
        // The reference engine's owned labels hash to the same content
        // hashes as the interner column, so both engines derive one key.
        for c in [families::h_m(2), families::g_m(3), families::s_m(2)] {
            let mut ws = ClassifierWorkspace::new();
            let mut fast = KeySink::default();
            ws.classify_with_sink(&c, Engine::Fast, &mut fast);
            let mut reference = KeySink::default();
            ws.classify_with_sink(&c, Engine::Reference, &mut reference);
            assert_eq!(fast.finish(&c), reference.finish(&c), "{c}");
        }
    }

    #[test]
    fn keys_separate_distinct_configurations() {
        let mut ws = ClassifierWorkspace::new();
        let mut rng = rng_from(77);
        let mut keys = radio_util::FxHashSet::default();
        let mut configs = vec![
            families::h_m(1),
            families::h_m(2),
            families::s_m(2),
            families::g_m(2),
            Configuration::new(generators::path(1), vec![0]).unwrap(),
        ];
        for _ in 0..20 {
            let g = generators::gnp_connected(7, 0.4, &mut rng);
            configs.push(tags::random_in_span(g, 5, &mut rng));
        }
        for c in &configs {
            keys.insert(canonical_key_in(&mut ws, c).1);
        }
        // random 7-node draws may legitimately repeat a trace; the named
        // family members are pairwise distinct for sure
        assert!(keys.len() >= 5, "only {} distinct keys", keys.len());
    }

    #[test]
    fn shifted_tags_change_the_key() {
        // The class-ordered tag multiset is part of the key, so a tag
        // shift (which preserves the whole refinement trace) still yields
        // a different key — the cache stays conservative there.
        let base = Configuration::new(generators::path(3), vec![0, 2, 1]).unwrap();
        let shifted = base.shift_tags(7);
        let mut ws = ClassifierWorkspace::new();
        let (_, k_base) = canonical_key_in(&mut ws, &base);
        let (_, k_shift) = canonical_key_in(&mut ws, &shifted);
        assert_ne!(k_base, k_shift);
    }

    #[test]
    fn trace_identical_configurations_share_a_key() {
        // Uniform-tag C_4 and K_4: every node hears one collision triple
        // (1, 1, ∗) in iteration 1 and the partition freezes at one class
        // — identical traces on different graphs, hence equal keys.
        let cycle = Configuration::with_uniform_tags(generators::cycle(4), 0).unwrap();
        let complete = Configuration::with_uniform_tags(generators::complete(4), 0).unwrap();
        let mut ws = ClassifierWorkspace::new();
        let (s_cycle, k_cycle) = canonical_key_in(&mut ws, &cycle);
        let (s_complete, k_complete) = canonical_key_in(&mut ws, &complete);
        assert_eq!(k_cycle, k_complete);
        assert_eq!(s_cycle, s_complete);
        assert!(!s_cycle.feasible);
    }

    #[test]
    #[should_panic(expected = "needs the classification")]
    fn finish_rejects_a_foreign_configuration() {
        let mut sink = KeySink::default();
        let mut ws = ClassifierWorkspace::new();
        ws.classify_with_sink(&families::h_m(2), Engine::Fast, &mut sink);
        // h_m(2) has 4 nodes; finishing against a 5-node config must trip
        let wrong = Configuration::with_uniform_tags(generators::path(5), 1).unwrap();
        let _ = sink.finish(&wrong);
    }
}
