//! Weisfeiler–Leman (1-WL) colour refinement on configurations — a
//! *structural* symmetry detector to contrast with `Classifier`'s
//! *radio-feasibility* decision.
//!
//! 1-WL iteratively recolours each node by the pair
//! `(own colour, sorted multiset of neighbour colours)`, starting from the
//! wake-up tags, until the colouring stabilizes. A node with a unique
//! stable colour is structurally unique — in the *wired* message-passing
//! world that would suffice to elect it (the paper's introduction makes
//! exactly this contrast).
//!
//! The radio world is strictly harder, and this module makes the gap
//! measurable:
//!
//! * **WL-unique but infeasible**: a path `P_3` with uniform tags has a
//!   structurally unique centre, yet no radio algorithm can elect it —
//!   with identical wake-ups no message is ever heard. Structural
//!   asymmetry does not survive collision-masked, timing-driven
//!   communication.
//! * The census experiment (E12) checks the converse direction
//!   exhaustively on small configurations: every feasible configuration
//!   observed has a WL-unique node, i.e. WL-uniqueness is (empirically) a
//!   *necessary* condition for feasibility, never a sufficient one.

use radio_graph::{Configuration, NodeId};
use radio_util::FxHashMap;

use crate::partition::Partition;

/// Result of running colour refinement to stability.
#[derive(Debug, Clone)]
pub struct WlOutcome {
    /// The stable colouring as a partition (classes numbered by first
    /// appearance in node order, like `Classifier`'s).
    pub partition: Partition,
    /// Refinement rounds until stability (0 when the initial colouring is
    /// already stable).
    pub iterations: usize,
}

impl WlOutcome {
    /// True iff some node has a unique stable colour.
    pub fn has_singleton(&self) -> bool {
        self.partition.has_singleton()
    }
}

/// Runs 1-WL colour refinement on `(graph, tags)` until the partition
/// stabilizes.
///
/// The per-round colour keys `(own colour, sorted neighbour colours)` are
/// built in one flat scratch arena reused across rounds — each node's
/// neighbour colours occupy a segment of `nbr` delimited by `off`, sorted
/// in place — instead of allocating a fresh `(u32, Vec<u32>)` per node per
/// round. Slice keys compare exactly like the vectors they replace, so
/// the output partition (numbering included) is unchanged.
pub fn refine(config: &Configuration) -> WlOutcome {
    let n = config.size();
    let csr = config.csr();

    // Initial colours: tag classes, numbered by first appearance.
    let mut colours: Vec<u32> = vec![0; n];
    let mut next = renumber_by_key((0..n).map(|v| config.tag(v as NodeId)), &mut colours);

    // Scratch reused across rounds: the flat neighbour-colour arena, its
    // per-node offsets, and the double-buffered colour vector.
    let mut nbr: Vec<u32> = Vec::with_capacity(csr.edge_count() * 2);
    let mut off: Vec<usize> = Vec::with_capacity(n + 1);
    let mut new_colours = vec![0u32; n];

    let mut iterations = 0usize;
    loop {
        // New colour key: (own colour, sorted neighbour colours) — each
        // node's colour multiset is a sorted segment of the arena.
        nbr.clear();
        off.clear();
        off.push(0);
        for v in 0..n as NodeId {
            let start = nbr.len();
            nbr.extend(csr.neighbors(v).iter().map(|&w| colours[w as usize]));
            nbr[start..].sort_unstable();
            off.push(nbr.len());
        }
        let keys = (0..n).map(|v| (colours[v], &nbr[off[v]..off[v + 1]]));
        let classes = renumber_by_key(keys, &mut new_colours);
        if classes == next {
            // `renumber_by_key` numbers by first appearance, and the new
            // key embeds the old colour, so an equal class count means an
            // identical partition: stable.
            break;
        }
        std::mem::swap(&mut colours, &mut new_colours);
        next = classes;
        iterations += 1;
    }

    let reps = representatives(&colours, next);
    WlOutcome {
        partition: Partition::from_parts(colours, next, reps),
        iterations,
    }
}

/// Assigns 1-based class numbers by first appearance of each key; writes
/// them into `out` and returns the class count.
fn renumber_by_key<K: std::hash::Hash + Eq>(keys: impl Iterator<Item = K>, out: &mut [u32]) -> u32 {
    let mut table: FxHashMap<K, u32> = FxHashMap::default();
    let mut next = 0u32;
    for (v, key) in keys.enumerate() {
        let id = *table.entry(key).or_insert_with(|| {
            next += 1;
            next
        });
        out[v] = id;
    }
    next
}

fn representatives(colours: &[u32], classes: u32) -> Vec<NodeId> {
    let mut reps = vec![NodeId::MAX; classes as usize];
    for (v, &c) in colours.iter().enumerate() {
        let slot = &mut reps[(c - 1) as usize];
        if *slot == NodeId::MAX {
            *slot = v as NodeId;
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, Configuration};

    #[test]
    fn uniform_path3_is_wl_unique_but_infeasible() {
        // The motivating gap: P_3 with uniform tags.
        let c = Configuration::with_uniform_tags(generators::path(3), 0).unwrap();
        let wl = refine(&c);
        assert!(wl.has_singleton(), "the centre is structurally unique");
        assert_eq!(wl.partition.num_classes(), 2); // {ends}, {centre}
        assert!(
            !crate::classify(&c).feasible,
            "yet no radio algorithm can elect it"
        );
    }

    #[test]
    fn uniform_cycle_has_no_wl_singleton() {
        let c = Configuration::with_uniform_tags(generators::cycle(5), 0).unwrap();
        let wl = refine(&c);
        assert_eq!(wl.partition.num_classes(), 1);
        assert!(!wl.has_singleton());
    }

    #[test]
    fn tags_refine_beyond_structure() {
        // A 4-cycle is vertex-transitive, but tags break it.
        let c = Configuration::new(generators::cycle(4), vec![0, 1, 0, 2]).unwrap();
        let wl = refine(&c);
        assert!(wl.has_singleton());
    }

    #[test]
    fn s_m_mirror_classes_match_classifier() {
        // On S_m both analyses agree: {a,d} and {b,c}.
        let c = families::s_m(2);
        let wl = refine(&c);
        assert_eq!(wl.partition.num_classes(), 2);
        assert_eq!(wl.partition.class_of(0), wl.partition.class_of(3));
        assert_eq!(wl.partition.class_of(1), wl.partition.class_of(2));
        assert!(!wl.has_singleton());
    }

    #[test]
    fn h_m_fully_separates() {
        let c = families::h_m(3);
        let wl = refine(&c);
        assert_eq!(wl.partition.num_classes(), 4);
    }

    #[test]
    fn feasible_implies_wl_singleton_on_small_corpus() {
        // The necessary-condition direction, spot-checked (E12 does this
        // exhaustively).
        let mut rng = radio_util::rng::rng_from(17);
        let mut feasible_seen = 0;
        for _ in 0..60 {
            let g = generators::gnp_connected(6, 0.4, &mut rng);
            let c = radio_graph::tags::random_in_span(g, 2, &mut rng);
            if crate::classify(&c).feasible {
                feasible_seen += 1;
                assert!(
                    refine(&c).has_singleton(),
                    "{c}: feasible but no WL singleton"
                );
            }
        }
        assert!(
            feasible_seen > 10,
            "corpus should contain feasible instances"
        );
    }

    #[test]
    fn iterations_are_bounded_by_n() {
        let c = families::g_m(4);
        let wl = refine(&c);
        assert!(wl.iterations <= c.size());
    }

    #[test]
    fn stable_on_singleton_graph() {
        let c = Configuration::new(generators::path(1), vec![0]).unwrap();
        let wl = refine(&c);
        assert_eq!(wl.iterations, 0);
        assert!(wl.has_singleton());
    }
}
