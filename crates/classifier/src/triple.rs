//! Label triples and the `≺_hist` ordering (paper Definition 3.1).
//!
//! During `Partitioner`, each node `v` summarizes what it would hear in one
//! phase of the canonical DRIP as a list of triples `(a, b, c)`:
//!
//! * `a` — the class of a transmitting neighbour (= the transmission block
//!   in which it transmits),
//! * `b = σ + 1 + t_w − t_v` — the local round *within* block `a` at which
//!   `v` hears it (`1 ≤ b ≤ 2σ+1`),
//! * `c` — `1` if exactly one neighbour maps to `(a, b)` (a clean message),
//!   `∗` if two or more do (a collision).
//!
//! A node's **label** is the concatenation of its triples sorted by
//! `≺_hist`, so equal would-be histories produce equal labels regardless of
//! neighbour iteration order.

use std::cmp::Ordering;
use std::fmt;

/// Multiplicity marker of a triple: one transmitter or a collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multi {
    /// Exactly one neighbour transmits at this (block, round): the node
    /// hears the message.
    One,
    /// Two or more: the node hears noise.
    Star,
}

impl fmt::Display for Multi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Multi::One => write!(f, "1"),
            Multi::Star => write!(f, "∗"),
        }
    }
}

/// A label triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Transmission block = class number of the transmitting neighbour(s).
    pub a: u32,
    /// Local round within the block, `1 ..= 2σ+1`.
    pub b: u64,
    /// One transmitter or collision.
    pub c: Multi,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(a: u32, b: u64, c: Multi) -> Triple {
        Triple { a, b, c }
    }
}

impl PartialOrd for Triple {
    fn partial_cmp(&self, other: &Triple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Triple {
    /// `≺_hist` (Definition 3.1): by `a`, then `b`, then `c` with `1 ≺ ∗`.
    fn cmp(&self, other: &Triple) -> Ordering {
        self.a
            .cmp(&other.a)
            .then(self.b.cmp(&other.b))
            .then_with(|| match (self.c, other.c) {
                (Multi::One, Multi::Star) => Ordering::Less,
                (Multi::Star, Multi::One) => Ordering::Greater,
                _ => Ordering::Equal,
            })
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.a, self.b, self.c)
    }
}

/// A node label: triples sorted by `≺_hist`. The paper concatenates the
/// triples into a string (`vLBL`); structural equality of the sorted vector
/// is the same relation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Label {
    triples: Vec<Triple>,
}

impl Label {
    /// The empty label (the paper's `null`; a node that would hear only
    /// silence).
    pub fn empty() -> Label {
        Label {
            triples: Vec::new(),
        }
    }

    /// Builds a label from triples, sorting them by `≺_hist`.
    ///
    /// # Panics
    /// In debug builds, panics if two triples share `(a, b)` — the
    /// partitioner is required to have merged those into one `∗` triple.
    pub fn from_triples(mut triples: Vec<Triple>) -> Label {
        triples.sort_unstable();
        debug_assert!(
            triples
                .windows(2)
                .all(|w| (w[0].a, w[0].b) != (w[1].a, w[1].b)),
            "duplicate (a,b) pair in label"
        );
        Label { triples }
    }

    /// The sorted triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True for the empty label.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Looks up the multiplicity at `(a, b)`, if present (binary search —
    /// the vector is `≺_hist`-sorted and `(a, b)` pairs are unique).
    pub fn multiplicity_at(&self, a: u32, b: u64) -> Option<Multi> {
        self.triples
            .binary_search_by(|t| t.a.cmp(&a).then(t.b.cmp(&b)))
            .ok()
            .map(|i| self.triples[i].c)
    }

    /// Rendering in the paper's concatenated form, e.g.
    /// `(1,3,1)(2,5,∗)` — `null` for the empty label.
    pub fn render(&self) -> String {
        if self.triples.is_empty() {
            "null".to_string()
        } else {
            self.triples
                .iter()
                .map(Triple::to_string)
                .collect::<Vec<_>>()
                .join("")
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_definition_3_1() {
        let t = |a, b, c| Triple::new(a, b, c);
        // a dominates
        assert!(t(1, 9, Multi::Star) < t(2, 1, Multi::One));
        // then b
        assert!(t(1, 2, Multi::Star) < t(1, 3, Multi::One));
        // then c with 1 ≺ ∗
        assert!(t(1, 2, Multi::One) < t(1, 2, Multi::Star));
        assert_eq!(
            t(1, 2, Multi::One).cmp(&t(1, 2, Multi::One)),
            Ordering::Equal
        );
    }

    #[test]
    fn label_sorts_triples() {
        let l = Label::from_triples(vec![
            Triple::new(2, 1, Multi::One),
            Triple::new(1, 5, Multi::Star),
            Triple::new(1, 2, Multi::One),
        ]);
        let order: Vec<(u32, u64)> = l.triples().iter().map(|t| (t.a, t.b)).collect();
        assert_eq!(order, vec![(1, 2), (1, 5), (2, 1)]);
    }

    #[test]
    fn labels_equal_iff_same_triples_any_order() {
        let a = Label::from_triples(vec![
            Triple::new(1, 2, Multi::One),
            Triple::new(3, 4, Multi::Star),
        ]);
        let b = Label::from_triples(vec![
            Triple::new(3, 4, Multi::Star),
            Triple::new(1, 2, Multi::One),
        ]);
        assert_eq!(a, b);
        let c = Label::from_triples(vec![
            Triple::new(1, 2, Multi::Star),
            Triple::new(3, 4, Multi::Star),
        ]);
        assert_ne!(a, c, "multiplicity matters");
    }

    #[test]
    fn multiplicity_lookup() {
        let l = Label::from_triples(vec![
            Triple::new(1, 2, Multi::One),
            Triple::new(2, 7, Multi::Star),
        ]);
        assert_eq!(l.multiplicity_at(1, 2), Some(Multi::One));
        assert_eq!(l.multiplicity_at(2, 7), Some(Multi::Star));
        assert_eq!(l.multiplicity_at(1, 3), None);
        assert_eq!(l.multiplicity_at(9, 9), None);
    }

    #[test]
    fn render_forms() {
        assert_eq!(Label::empty().render(), "null");
        let l = Label::from_triples(vec![
            Triple::new(2, 5, Multi::Star),
            Triple::new(1, 3, Multi::One),
        ]);
        assert_eq!(l.render(), "(1,3,1)(2,5,∗)");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate (a,b)")]
    fn duplicate_pairs_rejected_in_debug() {
        let _ = Label::from_triples(vec![
            Triple::new(1, 2, Multi::One),
            Triple::new(1, 2, Multi::Star),
        ]);
    }
}
