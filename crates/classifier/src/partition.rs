//! Node partitions into equivalence classes.
//!
//! Class ids are 1-based (matching the paper's pseudocode); class `k`'s
//! *representative* is the first node assigned to it, and — an invariant
//! the correctness proof leans on — a representative stays in its class for
//! the rest of the run, so class ids are stable across iterations and the
//! class count only grows (Corollary 3.3).

use radio_graph::NodeId;

/// A partition of nodes `0..n` into classes `1..=num_classes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    classes: Vec<u32>,
    num_classes: u32,
    reps: Vec<NodeId>,
}

impl Partition {
    /// The initial partition: everyone in class 1, represented by node 0
    /// (the paper's `Init-Aug`).
    pub fn initial(n: usize) -> Partition {
        assert!(n > 0, "partitions are over non-empty node sets");
        Partition {
            classes: vec![1; n],
            num_classes: 1,
            reps: vec![0],
        }
    }

    /// Builds a partition from explicit data (used by the engines).
    ///
    /// `reps[k-1]` must be a member of class `k`; validated in debug
    /// builds.
    pub fn from_parts(classes: Vec<u32>, num_classes: u32, reps: Vec<NodeId>) -> Partition {
        debug_assert_eq!(reps.len() as u32, num_classes);
        debug_assert!(classes.iter().all(|&c| c >= 1 && c <= num_classes));
        debug_assert!(reps
            .iter()
            .enumerate()
            .all(|(i, &r)| classes[r as usize] == i as u32 + 1));
        Partition {
            classes,
            num_classes,
            reps,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the node set is empty (never constructed; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Class of node `v` (1-based).
    #[inline]
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.classes[v as usize]
    }

    /// All class ids, indexed by node.
    pub fn classes(&self) -> &[u32] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Representative of class `k` (1-based).
    pub fn rep(&self, k: u32) -> NodeId {
        self.reps[(k - 1) as usize]
    }

    /// All representatives, `reps()[k-1]` for class `k`.
    pub fn reps(&self) -> &[NodeId] {
        &self.reps
    }

    /// Class sizes, `sizes()[k-1]` for class `k`.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_classes as usize];
        for &c in &self.classes {
            sizes[(c - 1) as usize] += 1;
        }
        sizes
    }

    /// Members of class `k`, in node order.
    pub fn members(&self, k: u32) -> Vec<NodeId> {
        (0..self.classes.len() as NodeId)
            .filter(|&v| self.class_of(v) == k)
            .collect()
    }

    /// The smallest class id that has exactly one member, if any — the
    /// paper's leader class `m̂`.
    pub fn smallest_singleton(&self) -> Option<u32> {
        self.sizes()
            .iter()
            .position(|&s| s == 1)
            .map(|i| i as u32 + 1)
    }

    /// True iff some class has exactly one member (`Classifier`'s Yes
    /// condition).
    pub fn has_singleton(&self) -> bool {
        self.smallest_singleton().is_some()
    }

    /// True iff `self` refines `coarser`: any two nodes sharing a class in
    /// `self` also share one in `coarser`. Every `Refine` call must produce
    /// a refinement of its input (Observation 3.2).
    pub fn refines(&self, coarser: &Partition) -> bool {
        if self.len() != coarser.len() {
            return false;
        }
        // For each self-class, all members must map into one coarser class.
        let mut image: Vec<Option<u32>> = vec![None; self.num_classes as usize];
        for v in 0..self.classes.len() {
            let fine = (self.classes[v] - 1) as usize;
            let coarse = coarser.classes[v];
            match image[fine] {
                None => image[fine] = Some(coarse),
                Some(c) if c == coarse => {}
                Some(_) => return false,
            }
        }
        true
    }

    /// True iff the two partitions group the nodes identically (ignoring
    /// class numbering).
    pub fn same_blocks(&self, other: &Partition) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.refines(other) && other.refines(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_one_class() {
        let p = Partition::initial(4);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.rep(1), 0);
        assert_eq!(p.sizes(), vec![4]);
        assert_eq!(p.members(1), vec![0, 1, 2, 3]);
        assert!(!p.has_singleton());
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn singleton_detection_picks_smallest() {
        let p = Partition::from_parts(vec![1, 2, 2, 3], 3, vec![0, 1, 3]);
        assert!(p.has_singleton());
        assert_eq!(p.smallest_singleton(), Some(1));
        assert_eq!(p.members(2), vec![1, 2]);
    }

    #[test]
    fn refinement_relation() {
        let coarse = Partition::from_parts(vec![1, 1, 2, 2], 2, vec![0, 2]);
        let fine = Partition::from_parts(vec![1, 3, 2, 2], 3, vec![0, 2, 1]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(coarse.refines(&coarse));
        assert!(!fine.same_blocks(&coarse));
        assert!(fine.same_blocks(&fine));
    }

    #[test]
    fn same_blocks_ignores_numbering() {
        let a = Partition::from_parts(vec![1, 2, 1], 2, vec![0, 1]);
        let b = Partition::from_parts(vec![2, 1, 2], 2, vec![1, 0]);
        assert!(a.same_blocks(&b));
        assert_ne!(a, b, "structural equality still distinguishes numbering");
    }

    #[test]
    fn cross_size_comparisons_are_false() {
        let a = Partition::initial(3);
        let b = Partition::initial(4);
        assert!(!a.refines(&b));
        assert!(!a.same_blocks(&b));
    }
}
