//! The `Classifier` outcome types and the classic eager entry points.
//!
//! `Classifier` alternates label computation ([`crate::partitioner`]) and
//! partition refinement ([`crate::reference`] / [`crate::fast`]) until a
//! singleton class appears (**feasible**) or an iteration leaves the
//! partition unchanged (**infeasible**). Per Lemma 3.4 this happens within
//! `⌈n/2⌉` iterations; the loop enforces that bound and treats overrun as
//! a broken invariant.
//!
//! The loop itself lives in [`crate::workspace`] — one implementation
//! drives both engines and streams each iteration to a
//! [`RecordSink`](crate::workspace::RecordSink). The functions here are
//! the eager wrappers: a fresh
//! [`ClassifierWorkspace`](crate::workspace::ClassifierWorkspace) with a
//! [`FullRecords`](crate::workspace::FullRecords) sink, packaged as the
//! classic [`Outcome`]. Batch callers hold a workspace and use
//! [`ClassifierWorkspace::classify_in`](crate::workspace::ClassifierWorkspace::classify_in)
//! / [`summarize_in`](crate::workspace::ClassifierWorkspace::summarize_in)
//! instead.

use radio_graph::Configuration;

use crate::partition::Partition;
use crate::triple::Label;
use crate::workspace::ClassifierWorkspace;

/// Which refinement engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Paper-literal `O(n³Δ)` engine with step counting.
    Reference,
    /// Hash-refinement engine, `O(nΔ)` expected per iteration.
    Fast,
}

/// Elementary-step counters (populated by the [`Engine::Reference`] engine
/// only; the fast engine reports zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Steps spent computing labels (Partitioner lines 1–22).
    pub label_steps: u64,
    /// Steps spent refining the partition (Refine).
    pub refine_steps: u64,
}

impl Cost {
    /// Total elementary steps.
    pub fn total(&self) -> u64 {
        self.label_steps + self.refine_steps
    }
}

/// What one `Classifier` iteration produced.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Label assigned to each node during this iteration (the paper's
    /// `v_LBL,i+1`).
    pub labels: Vec<Label>,
    /// The partition after this iteration (the paper's `v_CLASS,i+1`,
    /// `reps_{i+1}`, `numClasses_{G,i+1}`).
    pub partition: Partition,
}

/// The full result of running `Classifier` on a configuration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// `true` = "Yes" (leader election feasible), `false` = "No".
    pub feasible: bool,
    /// Number of iterations executed (the exit iteration `T`).
    pub iterations: usize,
    /// Per-iteration records, `records[i-1]` for iteration `i`.
    pub records: Vec<IterationRecord>,
    /// Step counters (reference engine only).
    pub cost: Cost,
    /// The engine that produced this outcome.
    pub engine: Engine,
}

impl Outcome {
    /// The partition after the final iteration.
    pub fn final_partition(&self) -> &Partition {
        &self.records[self.iterations - 1].partition
    }

    /// The leader class `m̂` (smallest singleton class of the final
    /// partition), when feasible.
    pub fn leader_class(&self) -> Option<u32> {
        if self.feasible {
            self.final_partition().smallest_singleton()
        } else {
            None
        }
    }

    /// Class counts per iteration — strictly increasing until the exit
    /// (Corollary 3.3).
    pub fn class_counts(&self) -> Vec<u32> {
        self.records
            .iter()
            .map(|r| r.partition.num_classes())
            .collect()
    }
}

/// Runs `Classifier` with the default (fast) engine.
pub fn classify(config: &Configuration) -> Outcome {
    classify_with(config, Engine::Fast)
}

/// Runs `Classifier` with the chosen engine (a fresh workspace per call —
/// hold a [`ClassifierWorkspace`] for repeated classification).
pub fn classify_with(config: &Configuration, engine: Engine) -> Outcome {
    ClassifierWorkspace::new().classify_in(config, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, tags, Configuration};

    fn both(config: &Configuration) -> (Outcome, Outcome) {
        (
            classify_with(config, Engine::Reference),
            classify_with(config, Engine::Fast),
        )
    }

    #[test]
    fn singleton_node_is_feasible() {
        let c = Configuration::new(generators::path(1), vec![0]).unwrap();
        let (r, f) = both(&c);
        assert!(r.feasible && f.feasible);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.leader_class(), Some(1));
    }

    #[test]
    fn uniform_tags_are_infeasible_beyond_one_node() {
        for g in [
            generators::path(4),
            generators::cycle(5),
            generators::complete(3),
        ] {
            let c = Configuration::with_uniform_tags(g, 0).unwrap();
            let (r, f) = both(&c);
            assert!(!r.feasible, "{c}");
            assert!(!f.feasible, "{c}");
            assert_eq!(r.iterations, 1, "no refinement possible at all");
        }
    }

    #[test]
    fn h_m_is_feasible_in_one_iteration() {
        // Lemma 4.2: each of the four nodes lands in its own class after
        // iteration 1.
        for m in [1u64, 2, 5, 30] {
            let c = families::h_m(m);
            let (r, f) = both(&c);
            assert!(r.feasible && f.feasible, "H_{m}");
            assert_eq!(r.iterations, 1);
            assert_eq!(r.final_partition().num_classes(), 4);
            assert_eq!(r.leader_class(), Some(1));
        }
    }

    #[test]
    fn s_m_is_infeasible_with_two_pair_classes() {
        // Prop 4.5: partition stabilizes at {a,d}, {b,c} after iteration 2.
        for m in [1u64, 2, 7] {
            let c = families::s_m(m);
            let (r, f) = both(&c);
            assert!(!r.feasible, "S_{m}");
            assert!(!f.feasible, "S_{m}");
            let p = r.final_partition();
            assert_eq!(p.num_classes(), 2);
            assert_eq!(p.class_of(0), p.class_of(3), "a ~ d");
            assert_eq!(p.class_of(1), p.class_of(2), "b ~ c");
        }
    }

    #[test]
    fn g_m_is_feasible_after_m_iterations() {
        // Prop 4.1: the centre b_{m+1} separates after m iterations.
        for m in [2usize, 3, 4, 6] {
            let c = families::g_m(m);
            let (r, f) = both(&c);
            assert!(r.feasible && f.feasible, "G_{m}");
            assert_eq!(r.iterations, m, "G_{m} needs exactly m iterations");
            // the centre is in a singleton class
            let p = r.final_partition();
            let center = families::g_m_center(m);
            let center_class = p.class_of(center);
            assert_eq!(p.members(center_class), vec![center]);
        }
    }

    #[test]
    fn engines_agree_exactly() {
        use radio_util::rng::rng_from;
        let mut rng = rng_from(2024);
        for trial in 0..40 {
            let n = 2 + (trial % 12);
            let g = generators::gnp_connected(n, 0.35, &mut rng);
            let c = tags::random_in_span(g, 5, &mut rng);
            let (r, f) = both(&c);
            assert_eq!(r.feasible, f.feasible, "{c}");
            assert_eq!(r.iterations, f.iterations);
            for (a, b) in r.records.iter().zip(&f.records) {
                assert_eq!(a.partition, b.partition);
                assert_eq!(a.labels, b.labels);
            }
        }
    }

    #[test]
    fn class_counts_strictly_increase_until_exit() {
        let c = families::g_m(5);
        let out = classify(&c);
        let counts = out.class_counts();
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "counts must strictly grow: {counts:?}");
        }
    }

    #[test]
    fn refinement_chain_is_monotone() {
        let c = families::g_m(4);
        let out = classify(&c);
        let mut prev = Partition::initial(c.size());
        for rec in &out.records {
            assert!(rec.partition.refines(&prev));
            prev = rec.partition.clone();
        }
    }

    #[test]
    fn reference_cost_is_positive_and_bounded() {
        let c = families::g_m(4); // n=17, Δ=2
        let out = classify_with(&c, Engine::Reference);
        let n = c.size() as u64;
        let delta = c.max_degree() as u64;
        assert!(out.cost.total() > 0);
        // Lemma 3.5: O(n³Δ) with a small constant; use 8 as slack.
        assert!(
            out.cost.total() <= 8 * n * n * n * delta,
            "cost {} exceeds bound",
            out.cost.total()
        );
    }

    #[test]
    fn distinct_tags_on_path_feasible() {
        let c = Configuration::new(generators::path(6), vec![0, 1, 2, 3, 4, 5]).unwrap();
        assert!(classify(&c).feasible);
    }

    #[test]
    fn two_node_distinct_tags_feasible() {
        let c = Configuration::new(generators::path(2), vec![0, 1]).unwrap();
        let out = classify(&c);
        assert!(out.feasible);
        assert_eq!(out.final_partition().num_classes(), 2);
    }

    #[test]
    fn two_node_same_tags_infeasible() {
        let c = Configuration::new(generators::path(2), vec![3, 3]).unwrap();
        assert!(!classify(&c).feasible);
    }
}
