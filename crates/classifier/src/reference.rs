//! The paper-literal `Refine` (Algorithm 2).
//!
//! Each node is compared against every class representative; it joins the
//! (unique) class whose representative has the same previous class and the
//! same freshly computed label, or founds a new class. Representatives
//! added mid-loop participate in later comparisons, exactly as in the
//! pseudocode (`for k = 1, …, numClasses` with a live upper bound).

use radio_graph::NodeId;

use crate::triple::Label;

/// Mutable classifier state shared by both engines.
///
/// The class vector is double-buffered: a `Refine` pass begins by swapping
/// `classes` into `prev` ([`RefState::begin_pass`]) and then writes every
/// node's new class into `classes` while reading old classes from `prev` —
/// no per-pass clone, so a warm pass (recycled by
/// [`crate::workspace::ClassifierWorkspace`]) performs zero heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RefState {
    /// 1-based class per node (the current partition).
    pub classes: Vec<u32>,
    /// The partition before the most recent `Refine` pass (the double
    /// buffer; valid after [`RefState::begin_pass`]).
    pub prev: Vec<u32>,
    /// Number of classes.
    pub num_classes: u32,
    /// `reps[k-1]` = representative of class `k`.
    pub reps: Vec<NodeId>,
}

impl RefState {
    #[cfg(test)]
    pub fn initial(n: usize) -> RefState {
        let mut state = RefState {
            classes: Vec::new(),
            prev: Vec::new(),
            num_classes: 1,
            reps: Vec::new(),
        };
        state.reset(n);
        state
    }

    /// Re-dimensions for `n` nodes in the initial all-ones partition,
    /// retaining buffer capacity (the workspace-recycling path).
    pub fn reset(&mut self, n: usize) {
        self.classes.clear();
        self.classes.resize(n, 1);
        self.prev.clear();
        self.prev.resize(n, 1);
        self.num_classes = 1;
        self.reps.clear();
        self.reps.push(0);
    }

    /// Starts a `Refine` pass: the current classes become `prev` (one
    /// `mem::swap`, no copy — the pass overwrites every `classes` slot).
    pub fn begin_pass(&mut self) {
        std::mem::swap(&mut self.classes, &mut self.prev);
    }
}

/// One paper-literal `Refine` pass. Returns the number of elementary steps
/// (label-triple comparisons plus bookkeeping), the quantity Lemma 3.5
/// bounds by `O(n²Δ)` per iteration.
pub(crate) fn refine_reference(state: &mut RefState, labels: &[Label]) -> u64 {
    state.begin_pass();
    let n = state.prev.len();
    let mut steps = 0u64;

    for v in 0..n {
        let mut matched: Option<u32> = None;
        let mut k = 1u32;
        while k <= state.num_classes {
            let rep = state.reps[(k - 1) as usize] as usize;
            // Comparing two sorted labels costs at most min(len)+1 triple
            // comparisons; count the class check as one more step.
            steps += 1 + labels[v].len().min(labels[rep].len()) as u64 + 1;
            if state.prev[v] == state.prev[rep] && labels[v] == labels[rep] {
                debug_assert!(
                    matched.is_none(),
                    "two representatives matched node {v}: classes {} and {k}",
                    matched.unwrap()
                );
                matched = Some(k);
            }
            k += 1;
        }
        match matched {
            Some(k) => state.classes[v] = k,
            None => {
                state.num_classes += 1;
                state.classes[v] = state.num_classes;
                state.reps.push(v as NodeId);
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::{Multi, Triple};

    fn lbl(a: u32, b: u64) -> Label {
        Label::from_triples(vec![Triple::new(a, b, Multi::One)])
    }

    #[test]
    fn splits_by_label() {
        // 4 nodes, all class 1; labels: x, y, x, y → classes 1,2,1,2
        let mut st = RefState::initial(4);
        let labels = vec![lbl(1, 1), lbl(1, 2), lbl(1, 1), lbl(1, 2)];
        refine_reference(&mut st, &labels);
        assert_eq!(st.classes, vec![1, 2, 1, 2]);
        assert_eq!(st.num_classes, 2);
        assert_eq!(st.reps, vec![0, 1]);
    }

    #[test]
    fn respects_previous_classes() {
        // nodes 0,1 in class 1; nodes 2,3 in class 2; all labels equal:
        // partition unchanged (same label but different old class keeps
        // them apart).
        let mut st = RefState {
            classes: vec![1, 1, 2, 2],
            prev: vec![0; 4],
            num_classes: 2,
            reps: vec![0, 2],
        };
        let labels = vec![Label::empty(); 4];
        refine_reference(&mut st, &labels);
        assert_eq!(st.classes, vec![1, 1, 2, 2]);
        assert_eq!(st.num_classes, 2);
    }

    #[test]
    fn new_rep_captures_later_twins() {
        // class 1 = {0,1,2}; labels: x, y, y → node 1 founds class 2, node
        // 2 must join it (matching the mid-loop representative).
        let mut st = RefState::initial(3);
        let labels = vec![lbl(1, 1), lbl(1, 5), lbl(1, 5)];
        refine_reference(&mut st, &labels);
        assert_eq!(st.classes, vec![1, 2, 2]);
        assert_eq!(st.reps, vec![0, 1]);
    }

    #[test]
    fn representatives_stay_in_their_classes() {
        // run two refinements; reps must remain members of their classes.
        let mut st = RefState::initial(5);
        let l1 = vec![lbl(1, 1), lbl(1, 1), lbl(1, 2), lbl(1, 2), lbl(1, 3)];
        refine_reference(&mut st, &l1);
        assert_eq!(st.classes, vec![1, 1, 2, 2, 3]);
        let l2 = vec![lbl(1, 1), lbl(2, 1), lbl(1, 2), lbl(1, 2), lbl(1, 3)];
        refine_reference(&mut st, &l2);
        // node 1 splits off into a fresh class 4; reps 0,2,4 unchanged
        assert_eq!(st.classes, vec![1, 4, 2, 2, 3]);
        assert_eq!(st.reps, vec![0, 2, 4, 1]);
        for (idx, &rep) in st.reps.iter().enumerate() {
            assert_eq!(st.classes[rep as usize], idx as u32 + 1);
        }
    }

    #[test]
    fn steps_are_counted() {
        let mut st = RefState::initial(2);
        let labels = vec![Label::empty(), Label::empty()];
        let steps = refine_reference(&mut st, &labels);
        assert!(steps > 0);
    }
}
