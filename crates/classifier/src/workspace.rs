//! Reusable, allocation-free classifier state — the batch-classification
//! substrate mirroring [`radio_sim`'s `SimWorkspace`] on the decision side
//! of the paper.
//!
//! A one-shot [`classify`](crate::classify) call allocates per iteration:
//! a fresh `Vec<Label>` (one heap label per node), two clones of the class
//! vector (one for `Refine`'s old/new split, one for the materialized
//! [`Partition`]), and an eager
//! [`IterationRecord`](crate::IterationRecord). None of that is needed to
//! *decide* feasibility — and for a campaign sweeping millions of
//! configurations, classification (not simulation) is the throughput
//! ceiling. The [`ClassifierWorkspace`] removes all of it:
//!
//! * **Label interner** — label contents live in one flat [`Triple`] arena
//!   ([`LabelInterner`]); a node's label is a `u32` id, and `Refine` hashes
//!   `(old class, label id)` — two machine words — through a *persistent*
//!   table instead of re-walking triple sequences.
//! * **Double-buffered classes** — old/new class vectors swap inside
//!   [`RefState`]; no per-pass clone.
//! * **Incremental worklist** — an iteration recomputes labels only for
//!   nodes whose own class or some neighbour's class changed in the
//!   previous pass. A node with a stable neighbourhood keeps its interned
//!   label id (ids are stable for the whole run), so stable regions cost
//!   nothing per iteration. The reference engine deliberately does *not*
//!   use the worklist: its step counts are the paper's measured `O(n³Δ)`
//!   quantity.
//! * **Streaming records** — instead of an eager `Vec<IterationRecord>`,
//!   each iteration is offered to a caller-chosen [`RecordSink`]:
//!   [`FullRecords`] reproduces the classic eager outcome, [`FinalOnly`]
//!   keeps just the final partition, [`ListsSink`] compiles the canonical
//!   lists `L_1 … L_{T+1}` on the fly (per-representative, not per-node),
//!   and `()` discards everything (the campaign's feasibility-rate path).
//!
//! The class *numbering* produced by the workspace is pinned identical to
//! the paper-literal reference engine — same table seeding, same node
//! order — so canonical lists compiled from any path are interchangeable;
//! `tests/classifier_reuse.rs` and the crate's property suite assert this
//! bit for bit, including across workspace reuse.

use radio_graph::{Configuration, NodeId};
use radio_util::fxhash::hash_one;
use radio_util::FxHashMap;

use crate::fast::refine_fast_by;
use crate::lists::{CanonicalLists, Level, ListEntry};
use crate::outcome::{Cost, Engine, IterationRecord, Outcome};
use crate::partition::Partition;
use crate::partitioner::{labels_reference_in, node_triples_into};
use crate::reference::{refine_reference, RefState};
use crate::triple::{Label, Triple};

/// Interns label triple-sequences into dense `u32` ids.
///
/// Contents live in one flat arena (`triples` + per-id `starts`); lookup
/// is open addressing over a power-of-two slot table with stored hashes,
/// so a warm intern of an already-seen label touches no allocation at all.
/// Ids are stable for the lifetime of one classification run (the
/// incremental worklist relies on that); [`LabelInterner::reset`] recycles
/// every buffer for the next run.
#[derive(Debug, Default)]
struct LabelInterner {
    /// Flat arena of label contents.
    triples: Vec<Triple>,
    /// `starts[id] .. starts[id+1]` delimits label `id` in `triples`.
    starts: Vec<u32>,
    /// FxHash of each interned label (cheap pre-compare + rehash).
    hashes: Vec<u64>,
    /// Open-addressing slots: `0` = empty, else `id + 1`.
    slots: Vec<u32>,
    mask: usize,
}

impl LabelInterner {
    const FIRST_SLOTS: usize = 64;

    /// Backing-buffer footprint in bytes (capacities, not lengths) — the
    /// interner's high-water mark, since none of its buffers ever shrink.
    fn mem_bytes(&self) -> u64 {
        (self.triples.capacity() * std::mem::size_of::<Triple>()
            + self.starts.capacity() * 4
            + self.hashes.capacity() * 8
            + self.slots.capacity() * 4) as u64
    }

    /// Clears all interned labels, keeping buffer capacity. Re-interns the
    /// empty label as id 0 (every node's label before its first
    /// relabeling).
    fn reset(&mut self) {
        self.triples.clear();
        self.starts.clear();
        self.starts.push(0);
        self.hashes.clear();
        if self.slots.len() < Self::FIRST_SLOTS {
            self.slots.resize(Self::FIRST_SLOTS, 0);
        }
        self.slots.fill(0);
        self.mask = self.slots.len() - 1;
        let empty = self.intern(&[]);
        debug_assert_eq!(empty, 0, "the empty label is always id 0");
    }

    /// The triples of label `id`.
    #[inline]
    fn get(&self, id: u32) -> &[Triple] {
        let lo = self.starts[id as usize] as usize;
        let hi = self.starts[id as usize + 1] as usize;
        &self.triples[lo..hi]
    }

    /// Returns the id of `label`, interning it if unseen. Same content ⟺
    /// same id (content equality is checked on hash match, so ids are
    /// injective).
    fn intern(&mut self, label: &[Triple]) -> u32 {
        let h = hash_one(&label);
        let mut i = (h as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                break;
            }
            let id = slot - 1;
            if self.hashes[id as usize] == h && self.get(id) == label {
                return id;
            }
            i = (i + 1) & self.mask;
        }
        let id = self.hashes.len() as u32;
        self.slots[i] = id + 1;
        self.hashes.push(h);
        self.triples.extend_from_slice(label);
        self.starts.push(self.triples.len() as u32);
        // Keep load factor below ~3/4.
        if (self.hashes.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        id
    }

    #[cold]
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(new_len, 0);
        self.mask = new_len - 1;
        for id in 0..self.hashes.len() as u32 {
            let mut i = (self.hashes[id as usize] as usize) & self.mask;
            while self.slots[i] != 0 {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = id + 1;
        }
    }
}

/// How the per-node labels of one iteration are backed: interned ids in
/// the workspace arena (fast engine) or an owned slice (reference engine,
/// whose labels are materialized for step counting anyway).
#[derive(Clone, Copy)]
enum LabelsRef<'a> {
    Interned {
        interner: &'a LabelInterner,
        ids: &'a [u32],
    },
    Owned(&'a [Label]),
}

/// A borrowed view of the classifier state after one iteration — what a
/// [`RecordSink`] sees. Everything is exposed without allocation; the
/// materializing accessors ([`IterationView::to_partition`],
/// [`IterationView::to_labels`]) are for sinks that choose to pay for
/// owned copies. The view is `Copy`, so composite sinks can fan one
/// iteration out to several inner sinks.
#[derive(Clone, Copy)]
pub struct IterationView<'a> {
    classes: &'a [u32],
    prev_classes: &'a [u32],
    num_classes: u32,
    reps: &'a [NodeId],
    labels: LabelsRef<'a>,
}

impl IterationView<'_> {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the node set is empty (never constructed; API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Class of node `v` after this iteration (1-based).
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.classes[v as usize]
    }

    /// Class of node `v` *before* this iteration — the `oldClass` the
    /// canonical lists record per representative.
    pub fn prev_class_of(&self, v: NodeId) -> u32 {
        self.prev_classes[v as usize]
    }

    /// Number of classes after this iteration.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Representative of class `k` (1-based).
    pub fn rep(&self, k: u32) -> NodeId {
        self.reps[(k - 1) as usize]
    }

    /// The label triples node `v` acquired this iteration (`≺_hist`-sorted).
    pub fn label_triples(&self, v: NodeId) -> &[Triple] {
        match &self.labels {
            LabelsRef::Interned { interner, ids } => interner.get(ids[v as usize]),
            LabelsRef::Owned(labels) => labels[v as usize].triples(),
        }
    }

    /// The content FxHash of node `v`'s label this iteration — a pure
    /// function of the triple sequence, independent of the workspace's
    /// interning order. The fast engine reads the interner's stored
    /// per-label hash column for free; the reference engine's owned
    /// labels hash on demand through the identical `hash_one(&[Triple])`
    /// formula, so both engines agree bit for bit. This is what
    /// [`KeySink`](crate::KeySink) folds: label *contents*, never ids.
    pub fn label_hash(&self, v: NodeId) -> u64 {
        match &self.labels {
            LabelsRef::Interned { interner, ids } => interner.hashes[ids[v as usize] as usize],
            LabelsRef::Owned(labels) => hash_one(&labels[v as usize].triples()),
        }
    }

    /// Materializes the partition after this iteration (allocates).
    pub fn to_partition(&self) -> Partition {
        Partition::from_parts(self.classes.to_vec(), self.num_classes, self.reps.to_vec())
    }

    /// Materializes every node's label (allocates).
    pub fn to_labels(&self) -> Vec<Label> {
        (0..self.classes.len())
            .map(|v| Label::from_triples(self.label_triples(v as NodeId).to_vec()))
            .collect()
    }
}

/// Receives each classifier iteration as it completes, instead of the old
/// eager `Vec<IterationRecord>`. Implementations choose what to retain —
/// from everything ([`FullRecords`]) down to nothing (`()`).
pub trait RecordSink {
    /// Called once per iteration (1-based), including the exit iteration.
    fn record(&mut self, iteration: usize, view: IterationView<'_>);
}

/// Discards every record — the pure-decision path ([`summarize`] /
/// campaign feasibility sweeps).
impl RecordSink for () {
    fn record(&mut self, _iteration: usize, _view: IterationView<'_>) {}
}

/// Fans each iteration out to two sinks — the view is `Copy` precisely so
/// composites like `(ListsSink, KeySink)` (the schedule cache's miss path:
/// compile the lists and derive the trace key in one classification) cost
/// nothing beyond the inner sinks.
impl<A: RecordSink, B: RecordSink> RecordSink for (A, B) {
    fn record(&mut self, iteration: usize, view: IterationView<'_>) {
        self.0.record(iteration, view);
        self.1.record(iteration, view);
    }
}

/// Materializes every [`IterationRecord`] — the classic
/// [`classify`](crate::classify) behaviour.
#[derive(Debug, Default)]
pub struct FullRecords {
    /// The records, `records[i-1]` for iteration `i`.
    pub records: Vec<IterationRecord>,
}

impl RecordSink for FullRecords {
    fn record(&mut self, _iteration: usize, view: IterationView<'_>) {
        self.records.push(IterationRecord {
            labels: view.to_labels(),
            partition: view.to_partition(),
        });
    }
}

/// Keeps only the final iteration's partition — enough for infeasibility
/// explanation and leader identification without per-node label storage.
/// The class/rep buffers are reused across iterations (each overwrite is
/// an `O(n)` copy into retained capacity, not a fresh allocation); the
/// [`Partition`] is materialized once, on demand.
#[derive(Debug, Default)]
pub struct FinalOnly {
    classes: Vec<u32>,
    reps: Vec<NodeId>,
    num_classes: u32,
    recorded: bool,
}

impl FinalOnly {
    /// The partition after the last recorded iteration, if any iteration
    /// ran.
    pub fn into_partition(self) -> Option<Partition> {
        self.recorded
            .then(|| Partition::from_parts(self.classes, self.num_classes, self.reps))
    }
}

impl RecordSink for FinalOnly {
    fn record(&mut self, _iteration: usize, view: IterationView<'_>) {
        self.classes.clear();
        self.classes.extend_from_slice(view.classes);
        self.reps.clear();
        self.reps.extend_from_slice(view.reps);
        self.num_classes = view.num_classes;
        self.recorded = true;
    }
}

/// Streams the canonical-list compilation: per iteration it extracts one
/// [`ListEntry`] per class *representative* (old class + label), which is
/// exactly what the lists `L_2 … L_{T+1}` hard-code — so a
/// `CanonicalSchedule` can be compiled without ever materializing per-node
/// records. Memory is `O(Σ numClasses_j)` instead of `O(n · T)`.
#[derive(Debug, Default)]
pub struct ListsSink {
    entries: Vec<Vec<ListEntry>>,
}

impl RecordSink for ListsSink {
    fn record(&mut self, _iteration: usize, view: IterationView<'_>) {
        let entries = (1..=view.num_classes())
            .map(|k| {
                let rep = view.rep(k);
                ListEntry {
                    old_class: view.prev_class_of(rep),
                    label: Label::from_triples(view.label_triples(rep).to_vec()),
                }
            })
            .collect();
        self.entries.push(entries);
    }
}

impl ListsSink {
    /// Compiles the streamed entries into [`CanonicalLists`], identical to
    /// [`CanonicalLists::from_outcome`] on the same run: `L_1` is the
    /// fixed `(1, null)` level, `L_j` (for `2 ≤ j ≤ T`) is iteration
    /// `j−1`'s entry list, `L_{T+1}` terminates, and the would-be final
    /// entries come from the exit iteration.
    pub fn into_lists(mut self, sigma: u64, leader_class: Option<u32>) -> CanonicalLists {
        let t = self.entries.len();
        assert!(t >= 1, "Classifier always runs at least one iteration");
        let final_entries = self.entries.pop().expect("t >= 1");
        let mut levels: Vec<Level> = Vec::with_capacity(t + 1);
        levels.push(Level::Blocks(vec![ListEntry {
            old_class: 1,
            label: Label::empty(),
        }]));
        levels.extend(self.entries.into_iter().map(Level::Blocks));
        levels.push(Level::Terminate);
        CanonicalLists {
            sigma,
            levels,
            final_entries,
            leader_class,
        }
    }
}

/// The lean result of a streamed classification — everything the decision
/// (and a campaign cell) needs, in a few machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifySummary {
    /// `true` = "Yes" (leader election feasible), `false` = "No".
    pub feasible: bool,
    /// Number of iterations executed (the exit iteration `T`).
    pub iterations: usize,
    /// Classes in the final partition.
    pub num_classes: u32,
    /// The leader class `m̂` (smallest singleton), when feasible.
    pub leader_class: Option<u32>,
    /// The predicted leader: the representative of the leader class.
    pub leader: Option<NodeId>,
    /// Label computations performed across the run. For the fast engine
    /// this is the incremental worklist's total (≤ `n · T`, and far below
    /// it when refinement is local); the reference engine always relabels
    /// all `n` per iteration.
    pub relabels: u64,
    /// Elementary-step counters (reference engine only; zeros for fast).
    pub cost: Cost,
    /// The engine that produced this summary.
    pub engine: Engine,
}

/// Reusable classifier state for back-to-back classifications.
///
/// Create one per worker thread, then call
/// [`classify_in`](ClassifierWorkspace::classify_in) /
/// [`summarize_in`](ClassifierWorkspace::summarize_in) /
/// [`classify_with_sink`](ClassifierWorkspace::classify_with_sink) as many
/// times as needed — each call resets and recycles every internal buffer
/// (interner arena, class double-buffer, refine table, worklist, scratch),
/// so a warmed-up workspace classifies without allocation on the fast
/// path. Results are pinned bit-identical to fresh one-shot runs
/// (`tests/classifier_reuse.rs`).
#[derive(Default)]
pub struct ClassifierWorkspace {
    state: RefState,
    interner: LabelInterner,
    /// Interned label id per node (fast engine).
    label_id: Vec<u32>,
    /// Worklist: nodes whose label must be recomputed this iteration.
    dirty: Vec<bool>,
    /// Persistent refine table keyed on `(old class, label id)`.
    table: FxHashMap<(u32, u32), u32>,
    /// Sort scratch for one node's `(class, block-round)` pairs.
    pairs: Vec<(u32, u64)>,
    /// Triple scratch for one node's merged label.
    scratch: Vec<Triple>,
    /// Class sizes of the current partition (recomputed per iteration).
    sizes: Vec<u32>,
}

impl std::fmt::Debug for ClassifierWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierWorkspace")
            .field("nodes", &self.label_id.len())
            .field("interned_labels", &self.interner.hashes.len())
            .finish()
    }
}

impl ClassifierWorkspace {
    /// An empty workspace; buffers are dimensioned lazily by the first run.
    pub fn new() -> ClassifierWorkspace {
        ClassifierWorkspace::default()
    }

    /// Approximate footprint of the workspace's backing buffers in bytes
    /// (capacities, not lengths — the high-water mark across every
    /// classification this workspace has run; the refine table is estimated
    /// from its capacity). Feeds the campaign `mem_hw` column.
    pub fn mem_bytes(&self) -> u64 {
        fn plane<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        self.interner.mem_bytes()
            + plane(&self.state.classes)
            + plane(&self.state.prev)
            + plane(&self.state.reps)
            + plane(&self.label_id)
            + plane(&self.dirty)
            + plane(&self.pairs)
            + plane(&self.scratch)
            + plane(&self.sizes)
            + (self.table.capacity() * (std::mem::size_of::<((u32, u32), u32)>() + 1)) as u64
    }

    fn reset_for(&mut self, n: usize) {
        self.state.reset(n);
        self.interner.reset();
        self.label_id.clear();
        self.label_id.resize(n, 0); // id 0 = empty label
        self.dirty.clear();
        self.dirty.resize(n, true); // iteration 1 relabels everyone
        self.table.clear();
        self.sizes.clear();
    }

    /// Runs `Classifier` with the chosen engine, offering each iteration
    /// to `sink`, and returns the lean summary. This is the single
    /// classification loop behind every public entry point
    /// ([`crate::classify`] = fast engine + [`FullRecords`]).
    pub fn classify_with_sink<S: RecordSink>(
        &mut self,
        config: &Configuration,
        engine: Engine,
        sink: &mut S,
    ) -> ClassifySummary {
        match engine {
            Engine::Fast => self.classify_fast(config, sink),
            Engine::Reference => self.classify_reference(config, sink),
        }
    }

    /// [`ClassifierWorkspace::classify_with_sink`] with a [`FullRecords`]
    /// sink, packaged as the classic [`Outcome`] — the drop-in recycling
    /// variant of [`crate::classify_with`].
    pub fn classify_in(&mut self, config: &Configuration, engine: Engine) -> Outcome {
        let mut sink = FullRecords::default();
        let summary = self.classify_with_sink(config, engine, &mut sink);
        Outcome {
            feasible: summary.feasible,
            iterations: summary.iterations,
            records: sink.records,
            cost: summary.cost,
            engine,
        }
    }

    /// Pure decision through the fast engine: no records are retained at
    /// all. The campaign classify phase routes every run through this.
    pub fn summarize_in(&mut self, config: &Configuration) -> ClassifySummary {
        self.classify_with_sink(config, Engine::Fast, &mut ())
    }

    /// The incremental fast engine: interned labels, double-buffered
    /// refine, dirty-neighbourhood worklist.
    fn classify_fast<S: RecordSink>(
        &mut self,
        config: &Configuration,
        sink: &mut S,
    ) -> ClassifySummary {
        let n = config.size();
        self.reset_for(n);
        let csr = config.csr();
        let sigma = config.span();
        let max_iterations = n.div_ceil(2);
        let mut relabels = 0u64;

        for iteration in 1..=max_iterations {
            let old_count = self.state.num_classes;

            // 1. Labels — only for nodes whose neighbourhood changed class
            //    last pass (everyone, in iteration 1). A clean node's
            //    interned id still denotes exactly the label it would
            //    recompute, because ids are stable for the whole run.
            for v in 0..n {
                if !self.dirty[v] {
                    continue;
                }
                relabels += 1;
                node_triples_into(
                    config,
                    sigma,
                    &self.state.classes,
                    v as NodeId,
                    &mut self.pairs,
                    &mut self.scratch,
                );
                self.label_id[v] = self.interner.intern(&self.scratch);
            }

            // 2. Refine on (old class, label id) — two-word keys through
            //    the persistent table.
            let label_id = &self.label_id;
            refine_fast_by(&mut self.state, |v| label_id[v], &mut self.table);

            // 3. Sizes, leader, sink, exit — the epilogue shared with the
            //    reference engine.
            if let Some(summary) = iteration_epilogue(
                &self.state,
                &mut self.sizes,
                LabelsRef::Interned {
                    interner: &self.interner,
                    ids: &self.label_id,
                },
                sink,
                iteration,
                old_count,
                relabels,
                Cost::default(),
                Engine::Fast,
            ) {
                return summary;
            }

            // 4. Next worklist: nodes touched by a class that split.
            self.dirty.fill(false);
            for v in 0..n {
                if self.state.classes[v] != self.state.prev[v] {
                    self.dirty[v] = true;
                    for &w in csr.neighbors(v as NodeId) {
                        self.dirty[w as usize] = true;
                    }
                }
            }
        }
        unreachable!(
            "Lemma 3.4: Classifier must exit within ⌈n/2⌉ = {max_iterations} iterations (n = {n})"
        )
    }

    /// The paper-literal reference engine through the same sink interface.
    /// No worklist, no interner — its labels are materialized and its
    /// elementary steps counted, exactly as Lemma 3.5 measures them; only
    /// the refine state buffers are recycled.
    fn classify_reference<S: RecordSink>(
        &mut self,
        config: &Configuration,
        sink: &mut S,
    ) -> ClassifySummary {
        let n = config.size();
        self.reset_for(n);
        let max_iterations = n.div_ceil(2);
        let mut cost = Cost::default();
        let mut relabels = 0u64;

        for iteration in 1..=max_iterations {
            let old_count = self.state.num_classes;

            let (labels, steps) = labels_reference_in(config, &self.state.classes);
            cost.label_steps += steps;
            relabels += n as u64;

            cost.refine_steps += refine_reference(&mut self.state, &labels);

            if let Some(summary) = iteration_epilogue(
                &self.state,
                &mut self.sizes,
                LabelsRef::Owned(&labels),
                sink,
                iteration,
                old_count,
                relabels,
                cost,
                Engine::Reference,
            ) {
                return summary;
            }
        }
        unreachable!(
            "Lemma 3.4: Classifier must exit within ⌈n/2⌉ = {max_iterations} iterations (n = {n})"
        )
    }
}

/// The post-refine tail of one iteration, shared by both engines: the
/// class-size histogram, leader detection (smallest singleton), the sink
/// offer, and — when an exit predicate fires (singleton ⇒ feasible,
/// unchanged class count ⇒ fixed point ⇒ infeasible) — the summary.
/// Living in one place, it pins the two engines' exit and leader
/// semantics together by construction.
#[allow(clippy::too_many_arguments)]
fn iteration_epilogue<S: RecordSink>(
    state: &RefState,
    sizes: &mut Vec<u32>,
    labels: LabelsRef<'_>,
    sink: &mut S,
    iteration: usize,
    old_count: u32,
    relabels: u64,
    cost: Cost,
    engine: Engine,
) -> Option<ClassifySummary> {
    let num_classes = state.num_classes;
    sizes.clear();
    sizes.resize(num_classes as usize, 0);
    for &c in &state.classes {
        sizes[(c - 1) as usize] += 1;
    }
    let leader_class = sizes.iter().position(|&s| s == 1).map(|i| i as u32 + 1);

    sink.record(
        iteration,
        IterationView {
            classes: &state.classes,
            prev_classes: &state.prev,
            num_classes,
            reps: &state.reps,
            labels,
        },
    );

    if leader_class.is_some() || num_classes == old_count {
        Some(ClassifySummary {
            feasible: leader_class.is_some(),
            iterations: iteration,
            num_classes,
            leader_class,
            leader: leader_class.map(|k| state.reps[(k - 1) as usize]),
            relabels,
            cost,
            engine,
        })
    } else {
        None
    }
}

/// One-shot lean decision: a fresh workspace, the fast engine, no records.
/// For repeated classification hold a [`ClassifierWorkspace`] and call
/// [`summarize_in`](ClassifierWorkspace::summarize_in) instead.
pub fn summarize(config: &Configuration) -> ClassifySummary {
    ClassifierWorkspace::new().summarize_in(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{classify_with, Engine};
    use radio_graph::{families, generators, tags, Configuration};

    fn assert_outcomes_identical(a: &Outcome, b: &Outcome, what: &str) {
        assert_eq!(a.feasible, b.feasible, "{what}: feasible");
        assert_eq!(a.iterations, b.iterations, "{what}: iterations");
        assert_eq!(a.records.len(), b.records.len(), "{what}: record count");
        for (i, (ra, rb)) in a.records.iter().zip(&b.records).enumerate() {
            assert_eq!(ra.partition, rb.partition, "{what}: partition iter {i}");
            assert_eq!(ra.labels, rb.labels, "{what}: labels iter {i}");
        }
    }

    #[test]
    fn interner_ids_are_injective_and_stable() {
        let mut interner = LabelInterner::default();
        interner.reset();
        let t = |a, b| Triple::new(a, b, crate::triple::Multi::One);
        let a = interner.intern(&[t(1, 2)]);
        let b = interner.intern(&[t(1, 3)]);
        let c = interner.intern(&[t(1, 2), t(2, 5)]);
        assert_eq!(interner.intern(&[t(1, 2)]), a);
        assert_eq!(interner.intern(&[t(1, 3)]), b);
        assert_eq!(interner.intern(&[t(1, 2), t(2, 5)]), c);
        assert_eq!(interner.intern(&[]), 0);
        assert!(a != b && b != c && a != c);
        assert_eq!(interner.get(a), &[t(1, 2)]);
        assert_eq!(interner.get(c), &[t(1, 2), t(2, 5)]);
    }

    #[test]
    fn interner_survives_growth() {
        let mut interner = LabelInterner::default();
        interner.reset();
        let mut ids = Vec::new();
        for i in 0..2000u64 {
            ids.push(interner.intern(&[Triple::new(
                (i % 97) as u32 + 1,
                i,
                crate::triple::Multi::Star,
            )]));
        }
        // re-intern everything: same ids back
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u64;
            assert_eq!(
                interner.intern(&[Triple::new(
                    (i % 97) as u32 + 1,
                    i,
                    crate::triple::Multi::Star
                )]),
                id
            );
        }
    }

    #[test]
    fn workspace_fast_matches_eager_classify_on_families() {
        let mut ws = ClassifierWorkspace::new();
        for config in [
            families::h_m(3),
            families::s_m(2),
            families::g_m(4),
            Configuration::new(generators::path(1), vec![0]).unwrap(),
            Configuration::with_uniform_tags(generators::cycle(5), 0).unwrap(),
        ] {
            let reused = ws.classify_in(&config, Engine::Fast);
            let eager = classify_with(&config, Engine::Fast);
            assert_outcomes_identical(&reused, &eager, &format!("{config}"));
        }
    }

    #[test]
    fn workspace_reference_matches_eager_reference() {
        let mut ws = ClassifierWorkspace::new();
        for config in [families::h_m(2), families::g_m(3), families::s_m(3)] {
            let reused = ws.classify_in(&config, Engine::Reference);
            let eager = classify_with(&config, Engine::Reference);
            assert_outcomes_identical(&reused, &eager, &format!("{config}"));
            assert_eq!(reused.cost, eager.cost, "{config}: step counters");
        }
    }

    #[test]
    fn summary_agrees_with_full_outcome_across_random_configs() {
        use radio_util::rng::rng_from;
        let mut rng = rng_from(42);
        let mut ws = ClassifierWorkspace::new();
        for trial in 0..40 {
            let n = 2 + (trial % 13);
            let g = generators::gnp_connected(n, 0.35, &mut rng);
            let config = tags::random_in_span(g, 5, &mut rng);
            let summary = ws.summarize_in(&config);
            let outcome = classify_with(&config, Engine::Fast);
            assert_eq!(summary.feasible, outcome.feasible, "{config}");
            assert_eq!(summary.iterations, outcome.iterations, "{config}");
            assert_eq!(
                summary.num_classes,
                outcome.final_partition().num_classes(),
                "{config}"
            );
            assert_eq!(summary.leader_class, outcome.leader_class(), "{config}");
            let predicted = outcome
                .leader_class()
                .map(|k| outcome.final_partition().rep(k));
            assert_eq!(summary.leader, predicted, "{config}");
        }
    }

    #[test]
    fn incremental_worklist_relabels_fewer_nodes_on_local_refinement() {
        // G_m refines one "ring" at a time: after the first iterations the
        // frontier is local, so the worklist must be well below n per
        // iteration.
        let config = families::g_m(8);
        let n = config.size() as u64;
        let mut ws = ClassifierWorkspace::new();
        let summary = ws.summarize_in(&config);
        assert!(summary.iterations >= 8);
        let full_relabels = n * summary.iterations as u64;
        assert!(
            summary.relabels < full_relabels,
            "worklist did no work: {} vs full {}",
            summary.relabels,
            full_relabels
        );
    }

    #[test]
    fn lists_sink_matches_from_outcome() {
        use radio_util::rng::rng_from;
        let mut rng = rng_from(9);
        let mut ws = ClassifierWorkspace::new();
        let mut configs = vec![
            families::h_m(2),
            families::s_m(2),
            families::g_m(3),
            Configuration::new(generators::path(1), vec![0]).unwrap(),
        ];
        for _ in 0..10 {
            let g = generators::gnp_connected(7, 0.4, &mut rng);
            configs.push(tags::random_in_span(g, 3, &mut rng));
        }
        for config in configs {
            let mut sink = ListsSink::default();
            let summary = ws.classify_with_sink(&config, Engine::Fast, &mut sink);
            let streamed = sink.into_lists(config.span(), summary.leader_class);
            let outcome = classify_with(&config, Engine::Fast);
            let eager = CanonicalLists::from_outcome(&config, &outcome);
            assert_eq!(streamed, eager, "{config}");
        }
    }

    #[test]
    fn final_only_sink_keeps_the_final_partition() {
        let config = families::g_m(3);
        let mut ws = ClassifierWorkspace::new();
        let mut sink = FinalOnly::default();
        let summary = ws.classify_with_sink(&config, Engine::Fast, &mut sink);
        let outcome = classify_with(&config, Engine::Fast);
        assert_eq!(
            sink.into_partition().as_ref(),
            Some(outcome.final_partition())
        );
        assert_eq!(summary.iterations, outcome.iterations);
    }

    #[test]
    fn reuse_across_shrinking_and_growing_sizes() {
        // grow, shrink, grow — recycled buffers must never leak state
        let mut ws = ClassifierWorkspace::new();
        let configs = [
            families::g_m(6), // n = 33
            families::h_m(1), // n = 4
            families::g_m(4), // n = 21
            families::s_m(5), // n = 4
        ];
        for _ in 0..2 {
            for config in &configs {
                for engine in [Engine::Fast, Engine::Reference] {
                    let reused = ws.classify_in(config, engine);
                    let fresh = classify_with(config, engine);
                    assert_outcomes_identical(&reused, &fresh, &format!("{config} {engine:?}"));
                }
            }
        }
    }

    #[test]
    fn summarize_one_shot_matches_workspace() {
        let config = families::h_m(4);
        let a = summarize(&config);
        let b = ClassifierWorkspace::new().summarize_in(&config);
        assert_eq!(a, b);
        assert!(a.feasible);
        assert_eq!(a.leader, Some(0));
    }
}
