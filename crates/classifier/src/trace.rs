//! Human-readable rendering of a classifier run — used by the
//! `classifier_trace` example and for debugging refinement behaviour.

use radio_graph::Configuration;

use crate::outcome::Outcome;

/// Renders the iteration-by-iteration refinement as text: per iteration the
/// class count, the members and representative label of each class, and the
/// final verdict.
pub fn render(config: &Configuration, outcome: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Classifier on {config}");
    let _ = writeln!(out, "tags: {:?}", config.tags());
    for (i, rec) in outcome.records.iter().enumerate() {
        let p = &rec.partition;
        let _ = writeln!(out, "-- iteration {}: {} classes", i + 1, p.num_classes());
        for k in 1..=p.num_classes() {
            let members = p.members(k);
            let rep = p.rep(k);
            let _ = writeln!(
                out,
                "   class {k}: members {:?}, rep v{rep}, label {}",
                members, rec.labels[rep as usize]
            );
        }
    }
    let verdict = if outcome.feasible {
        format!(
            "YES — feasible; leader class {} after {} iteration(s)",
            outcome
                .leader_class()
                .expect("feasible outcome has a leader class"),
            outcome.iterations
        )
    } else {
        format!(
            "NO — infeasible; partition stabilized after {} iteration(s)",
            outcome.iterations
        )
    };
    let _ = writeln!(out, "verdict: {verdict}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::classify;
    use radio_graph::families;

    #[test]
    fn trace_mentions_iterations_and_verdict() {
        let c = families::h_m(2);
        let out = classify(&c);
        let text = render(&c, &out);
        assert!(text.contains("iteration 1"));
        assert!(text.contains("YES"));
        assert!(text.contains("leader class 1"));
        assert!(text.contains("class 4"));
    }

    #[test]
    fn infeasible_trace_says_no() {
        let c = families::s_m(1);
        let out = classify(&c);
        let text = render(&c, &out);
        assert!(text.contains("NO"));
        assert!(text.contains("stabilized"));
    }
}
