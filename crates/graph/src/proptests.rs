//! Property-based tests over the graph substrate.

use proptest::prelude::*;

use crate::algo::{component_count, is_connected};
use crate::config::Configuration;
use crate::csr::Csr;
use crate::generators;
use crate::graph::{Graph, NodeId};
use crate::io;
use radio_util::rng::rng_from;

/// Strategy: a connected random graph described by (n, extra-edge budget,
/// seed), realized deterministically from the seed.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (1usize..24, 0usize..12, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = rng_from(seed);
        let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
        generators::random_connected(n, extra.min(max_extra), &mut rng)
    })
}

proptest! {
    #[test]
    fn generated_graphs_satisfy_invariants(g in connected_graph()) {
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(is_connected(&g));
        prop_assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn csr_round_trip_preserves_edges(g in connected_graph()) {
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.to_graph().edges(), g.edges());
        // neighbour queries agree
        for v in 0..g.node_count() as NodeId {
            let mut expect = g.sorted_neighbors(v);
            expect.dedup();
            prop_assert_eq!(csr.neighbors(v), &expect[..]);
        }
    }

    #[test]
    fn io_round_trip(g in connected_graph(), seed in any::<u64>()) {
        let n = g.node_count();
        let mut rng = rng_from(seed);
        use rand::Rng;
        let tags: Vec<u64> = (0..n).map(|_| rng.random_range(0..10)).collect();
        let c = Configuration::new(g, tags).unwrap();
        let back = io::from_text(&io::to_text(&c)).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn normalization_is_idempotent_and_span_preserving(
        g in connected_graph(),
        shift in 0u64..50,
    ) {
        let n = g.node_count();
        let c = Configuration::new(g, (0..n as u64).map(|v| v % 5 + 3).collect()).unwrap();
        let shifted = c.shift_tags(shift);
        prop_assert_eq!(shifted.span(), c.span());
        let nrm = shifted.normalize();
        prop_assert!(nrm.is_normalized());
        prop_assert_eq!(nrm.normalize(), nrm.clone());
        prop_assert_eq!(nrm, c.normalize());
    }

    #[test]
    fn relabel_by_random_permutation_preserves_structure(
        g in connected_graph(),
        seed in any::<u64>(),
        tags_seed in any::<u64>(),
    ) {
        let n = g.node_count();
        use rand::seq::SliceRandom;
        use rand::Rng;
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        perm.shuffle(&mut rng_from(seed));
        let mut trng = rng_from(tags_seed);
        let tags: Vec<u64> = (0..n).map(|_| trng.random_range(0..6)).collect();
        let c = Configuration::new(g, tags).unwrap();
        let r = c.relabel(&perm);
        prop_assert_eq!(r.size(), c.size());
        prop_assert_eq!(r.span(), c.span());
        prop_assert_eq!(r.graph().edge_count(), c.graph().edge_count());
        prop_assert_eq!(r.max_degree(), c.max_degree());
        // tags travel with nodes
        for (v, &p) in perm.iter().enumerate() {
            prop_assert_eq!(r.tag(p), c.tag(v as NodeId));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gnp_connected_is_connected(n in 2usize..20, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, &mut rng_from(seed));
        prop_assert!(is_connected(&g));
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        // Fuzz the configuration parser: any input must yield Ok or a
        // typed error, never a panic.
        let _ = io::from_text(&text);
    }

    #[test]
    fn parser_never_panics_on_directive_shaped_text(
        n in 0usize..6,
        m in 0usize..6,
        body in proptest::collection::vec("(config|tags|edge|#x) ?[0-9 ]{0,8}", 0..8),
    ) {
        let text = format!("config {n} {m}\n{}", body.join("\n"));
        let _ = io::from_text(&text);
    }
}
