//! Property-based tests over the graph substrate.

use proptest::prelude::*;

use crate::algo::{component_count, is_connected};
use crate::config::Configuration;
use crate::csr::Csr;
use crate::family::FamilySpec;
use crate::generators;
use crate::graph::{Graph, NodeId};
use crate::io;
use crate::tags::TagStrategy;
use radio_util::rng::rng_from;

/// Strategy: a connected random graph described by (n, extra-edge budget,
/// seed), realized deterministically from the seed.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (1usize..24, 0usize..12, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = rng_from(seed);
        let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
        generators::random_connected(n, extra.min(max_extra), &mut rng)
    })
}

proptest! {
    #[test]
    fn generated_graphs_satisfy_invariants(g in connected_graph()) {
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(is_connected(&g));
        prop_assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn csr_round_trip_preserves_edges(g in connected_graph()) {
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.to_graph().edges(), g.edges());
        // neighbour queries agree
        for v in 0..g.node_count() as NodeId {
            let mut expect = g.sorted_neighbors(v);
            expect.dedup();
            prop_assert_eq!(csr.neighbors(v), &expect[..]);
        }
    }

    #[test]
    fn io_round_trip(g in connected_graph(), seed in any::<u64>()) {
        let n = g.node_count();
        let mut rng = rng_from(seed);
        use rand::Rng;
        let tags: Vec<u64> = (0..n).map(|_| rng.random_range(0..10)).collect();
        let c = Configuration::new(g, tags).unwrap();
        let back = io::from_text(&io::to_text(&c)).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn normalization_is_idempotent_and_span_preserving(
        g in connected_graph(),
        shift in 0u64..50,
    ) {
        let n = g.node_count();
        let c = Configuration::new(g, (0..n as u64).map(|v| v % 5 + 3).collect()).unwrap();
        let shifted = c.shift_tags(shift);
        prop_assert_eq!(shifted.span(), c.span());
        let nrm = shifted.normalize();
        prop_assert!(nrm.is_normalized());
        prop_assert_eq!(nrm.normalize(), nrm.clone());
        prop_assert_eq!(nrm, c.normalize());
    }

    #[test]
    fn relabel_by_random_permutation_preserves_structure(
        g in connected_graph(),
        seed in any::<u64>(),
        tags_seed in any::<u64>(),
    ) {
        let n = g.node_count();
        use rand::seq::SliceRandom;
        use rand::Rng;
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        perm.shuffle(&mut rng_from(seed));
        let mut trng = rng_from(tags_seed);
        let tags: Vec<u64> = (0..n).map(|_| trng.random_range(0..6)).collect();
        let c = Configuration::new(g, tags).unwrap();
        let r = c.relabel(&perm);
        prop_assert_eq!(r.size(), c.size());
        prop_assert_eq!(r.span(), c.span());
        prop_assert_eq!(r.graph().edge_count(), c.graph().edge_count());
        prop_assert_eq!(r.max_degree(), c.max_degree());
        // tags travel with nodes
        for (v, &p) in perm.iter().enumerate() {
            prop_assert_eq!(r.tag(p), c.tag(v as NodeId));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gnp_connected_is_connected(n in 2usize..20, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, p, &mut rng_from(seed));
        prop_assert!(is_connected(&g));
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn torus_is_4_regular(r in 3usize..8, c in 3usize..8) {
        let g = generators::torus(r, c);
        prop_assert_eq!(g.node_count(), r * c);
        prop_assert_eq!(g.edge_count(), 2 * r * c);
        prop_assert!(g.nodes().all(|v| g.degree(v) == 4));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_is_d_regular(d in 1u32..8) {
        let g = generators::hypercube(d);
        let n = 1usize << d;
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), d as usize * n / 2);
        prop_assert!(g.nodes().all(|v| g.degree(v) == d as usize));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn ladder_has_max_degree_3(len in 1usize..24) {
        let g = generators::ladder(len);
        prop_assert_eq!(g.node_count(), 2 * len);
        prop_assert_eq!(g.edge_count(), 3 * len - 2); // two rails + rungs
        prop_assert!(g.max_degree() <= 3);
        prop_assert_eq!(g.degree(0), if len == 1 { 1 } else { 2 }, "corner");
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn grid_shape_counts(r in 1usize..8, c in 1usize..8) {
        let g = generators::grid(r, c);
        prop_assert_eq!(g.node_count(), r * c);
        prop_assert_eq!(g.edge_count(), r * (c - 1) + (r - 1) * c);
        prop_assert!(g.max_degree() <= 4);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn caterpillar_is_a_tree_with_leggy_spine(s in 1usize..10, l in 0usize..5) {
        let g = generators::caterpillar(s, l);
        let n = s * (1 + l);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1, "caterpillars are trees");
        prop_assert!(is_connected(&g));
        // an interior spine node sees two spine edges plus its legs
        if s > 2 {
            prop_assert_eq!(g.degree(1), 2 + l);
        }
        // every leaf is pendant
        prop_assert!((s..n).all(|v| g.degree(v as NodeId) == 1));
    }

    #[test]
    fn spider_center_has_one_degree_per_leg(legs in 0usize..7, len in 0usize..6) {
        let g = generators::spider(legs, len);
        prop_assert_eq!(g.node_count(), 1 + legs * len);
        prop_assert_eq!(g.edge_count(), legs * len);
        prop_assert_eq!(g.degree(0), if len == 0 { 0 } else { legs });
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn barbell_and_lollipop_counts(k in 1usize..8, b in 0usize..6) {
        let bar = generators::barbell(k, b);
        prop_assert_eq!(bar.node_count(), 2 * k + b);
        prop_assert_eq!(bar.edge_count(), k * (k - 1) + b + 1);
        prop_assert!(is_connected(&bar));
        let lol = generators::lollipop(k, b);
        prop_assert_eq!(lol.node_count(), k + b);
        prop_assert_eq!(lol.edge_count(), k * (k - 1) / 2 + b);
        prop_assert!(is_connected(&lol));
    }

    #[test]
    fn wheel_hub_and_rim_degrees(n in 4usize..24) {
        let g = generators::wheel(n);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), 2 * (n - 1)); // spokes + rim
        prop_assert_eq!(g.degree(0), n - 1);
        prop_assert!((1..n as NodeId).all(|v| g.degree(v) == 3));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn double_star_and_bipartite_counts(a in 1usize..8, b in 1usize..8) {
        let ds = generators::double_star(a, b);
        prop_assert_eq!(ds.node_count(), 2 + a + b);
        prop_assert_eq!(ds.edge_count(), 1 + a + b);
        prop_assert_eq!(ds.degree(0), 1 + a);
        prop_assert_eq!(ds.degree(1), 1 + b);
        prop_assert!(is_connected(&ds));
        let kb = generators::complete_bipartite(a, b);
        prop_assert_eq!(kb.node_count(), a + b);
        prop_assert_eq!(kb.edge_count(), a * b);
        prop_assert!((0..a as NodeId).all(|v| kb.degree(v) == b));
        prop_assert!((a as NodeId..(a + b) as NodeId).all(|v| kb.degree(v) == a));
        prop_assert!(is_connected(&kb));
    }

    #[test]
    fn complete_graph_is_n_minus_1_regular(n in 1usize..16) {
        let g = generators::complete(n);
        prop_assert_eq!(g.edge_count(), n * (n - 1) / 2);
        prop_assert!(g.nodes().all(|v| g.degree(v) == n - 1));
    }

    #[test]
    fn random_caterpillar_is_a_tree(s in 1usize..8, l in 0usize..10, seed in any::<u64>()) {
        let g = generators::random_caterpillar(s, l, &mut rng_from(seed));
        prop_assert_eq!(g.node_count(), s + l);
        prop_assert_eq!(g.edge_count(), s + l - 1);
        prop_assert!(is_connected(&g));
        prop_assert!((s..s + l).all(|v| g.degree(v as NodeId) == 1));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        // Fuzz the configuration parser: any input must yield Ok or a
        // typed error, never a panic.
        let _ = io::from_text(&text);
    }

    #[test]
    fn parser_never_panics_on_directive_shaped_text(
        n in 0usize..6,
        m in 0usize..6,
        body in proptest::collection::vec("(config|tags|edge|#x) ?[0-9 ]{0,8}", 0..8),
    ) {
        let text = format!("config {n} {m}\n{}", body.join("\n"));
        let _ = io::from_text(&text);
    }
}

/// Strategy: a random [`FamilySpec`] across the whole grammar — every
/// variant, with parameters drawn from their valid ranges.
fn family_spec() -> impl Strategy<Value = FamilySpec> {
    (0usize..20, 1u32..9, 0u32..9, 0u32..1_000_001).prop_map(|(variant, a, b, ppm)| match variant {
        0 => FamilySpec::Path,
        1 => FamilySpec::Cycle,
        2 => FamilySpec::Star,
        3 => FamilySpec::Complete,
        4 => FamilySpec::Wheel,
        5 => FamilySpec::Ladder,
        6 => FamilySpec::Tree { arity: a },
        7 => FamilySpec::RandomTree,
        8 => FamilySpec::Gnp {
            ppm: if b % 2 == 0 { None } else { Some(ppm) },
        },
        9 => FamilySpec::RandomConnected { extra: b },
        10 => FamilySpec::Grid {
            rows: a,
            cols: b + 1,
        },
        11 => FamilySpec::Torus {
            rows: a + 2,
            cols: b + 3,
        },
        12 => FamilySpec::Hypercube { dim: (a % 5) + 1 },
        13 => FamilySpec::Caterpillar { spine: a, legs: b },
        14 => FamilySpec::RandomCaterpillar {
            spine: a,
            leaves: b,
        },
        15 => FamilySpec::Spider { legs: a, len: b },
        16 => FamilySpec::Barbell {
            clique: a,
            bridge: b,
        },
        17 => FamilySpec::Lollipop { clique: a, tail: b },
        18 => FamilySpec::DoubleStar { left: a, right: b },
        _ => FamilySpec::Bipartite {
            left: a,
            right: b + 1,
        },
    })
}

/// Strategy: a random [`TagStrategy`] across all four kinds.
fn tag_strategy() -> impl Strategy<Value = TagStrategy> {
    (0usize..4, 1u64..12).prop_map(|(variant, stride)| match variant {
        0 => TagStrategy::Uniform,
        1 => TagStrategy::Clustered,
        2 => TagStrategy::Extremes,
        _ => TagStrategy::Arith { stride },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn family_spec_parse_display_round_trips(spec in family_spec()) {
        let rendered = spec.to_string();
        let reparsed: FamilySpec = rendered.parse()
            .map_err(|e: String| TestCaseError::fail(format!("`{rendered}`: {e}")))?;
        prop_assert_eq!(reparsed, spec, "{}", rendered);
        // rendering is canonical: a second round trip is a fixed point
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn family_spec_builds_match_the_declared_size(spec in family_spec(), seed in any::<u64>()) {
        let n = spec.default_size();
        let g = spec.build(n, seed)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(g.node_count(), n, "{}", spec);
        prop_assert!(is_connected(&g), "{}", spec);
        prop_assert!(g.check_invariants().is_ok(), "{}", spec);
        if let Some(pinned) = spec.node_count() {
            prop_assert_eq!(pinned, n, "{}", spec);
            // any other size is an error, never a clamp
            prop_assert!(spec.build(n + 1, seed).is_err(), "{}", spec);
        }
    }

    #[test]
    fn tag_strategy_round_trips_and_draws_in_contract(
        spec in tag_strategy(),
        n in 1usize..40,
        span in 0u64..200,
        seed in any::<u64>(),
    ) {
        let reparsed: TagStrategy = spec.to_string().parse()
            .map_err(|e: String| TestCaseError::fail(e))?;
        prop_assert_eq!(reparsed, spec);
        let tags = spec.draw(n, span, &mut rng_from(seed));
        prop_assert_eq!(tags.len(), n);
        prop_assert_eq!(tags.iter().copied().min(), Some(0), "{}: normalized", spec);
        prop_assert!(tags.iter().all(|&t| t <= span), "{}: bounded by σ", spec);
        // drawing is seed-deterministic
        prop_assert_eq!(&tags, &spec.draw(n, span, &mut rng_from(seed)));
    }
}

/// The scale-path generation contract body (free fn: the vendored
/// `proptest!` macro token-munches the body, so it must stay tiny).
fn assert_csr_routes_agree(seed: u64, jitter: usize) -> Result<(), TestCaseError> {
    for spec in FamilySpec::zoo() {
        // Pinned specs only build at their own size; scalable ones get
        // jittered off the default to vary degree sequences.
        let n = match spec.node_count() {
            Some(pinned) => pinned,
            None => spec.default_size() + jitter,
        };
        match (spec.build_csr(n, seed), spec.build(n, seed)) {
            (Ok(direct), Ok(graph)) => {
                prop_assert_eq!(
                    direct,
                    Csr::from_graph(&graph),
                    "{} n={} seed={}",
                    spec,
                    n,
                    seed
                );
            }
            (Err(_), Err(_)) => {}
            (direct, graph) => {
                return Err(TestCaseError::fail(format!(
                    "{spec} n={n} seed={seed}: routes disagree on feasibility \
                     (csr-direct: {}, graph: {})",
                    if direct.is_ok() { "ok" } else { "err" },
                    if graph.is_ok() { "ok" } else { "err" },
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn csr_direct_route_is_byte_identical_across_the_zoo(
        seed in any::<u64>(),
        jitter in 0usize..16,
    ) {
        assert_csr_routes_agree(seed, jitter)?;
    }
}
