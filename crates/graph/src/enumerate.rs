//! Exhaustive enumeration of small configurations.
//!
//! The census experiments sweep *every* connected labelled graph on up to
//! ~6 nodes and every normalized tag pattern up to a span bound — small
//! enough to brute-force, large enough to answer questions the paper
//! leaves implicit (e.g. *is every configuration with pairwise-distinct
//! tags feasible?*).

use crate::config::Tag;
use crate::graph::{Graph, NodeId};

/// All connected labelled simple graphs on `n` nodes (`n ≤ 7` is
/// practical: the loop enumerates `2^(n(n-1)/2)` edge subsets).
///
/// Counts follow OEIS A001187: 1, 1, 4, 38, 728, 26704 for n = 1…6.
pub fn connected_graphs(n: usize) -> Vec<Graph> {
    assert!(
        (1..=7).contains(&n),
        "exhaustive enumeration is for 1 ≤ n ≤ 7, got {n}"
    );
    let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
        .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
        .collect();
    let m = pairs.len();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << m) {
        let mut g = Graph::new(n);
        for (bit, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                g.add_edge(u, v).expect("enumerated pairs are valid");
            }
        }
        if crate::algo::is_connected(&g) {
            out.push(g);
        }
    }
    out
}

/// All normalized tag patterns on `n` nodes with span ≤ `max_span`:
/// every entry in `0..=max_span` and at least one entry equal to 0
/// (patterns are considered up to common shift, so only normalized ones
/// are generated).
pub fn tag_patterns(n: usize, max_span: Tag) -> Vec<Vec<Tag>> {
    let base = max_span + 1;
    let total = base.pow(n as u32);
    let mut out = Vec::new();
    for code in 0..total {
        let mut c = code;
        let mut tags = Vec::with_capacity(n);
        let mut has_zero = false;
        for _ in 0..n {
            let t = c % base;
            has_zero |= t == 0;
            tags.push(t);
            c /= base;
        }
        if has_zero {
            out.push(tags);
        }
    }
    out
}

/// All `n!` pairwise-distinct tag patterns (permutations of `0..n`).
pub fn distinct_tag_patterns(n: usize) -> Vec<Vec<Tag>> {
    let mut current: Vec<Tag> = (0..n as Tag).collect();
    let mut out = Vec::new();
    permute(&mut current, 0, &mut out);
    out
}

fn permute(arr: &mut Vec<Tag>, k: usize, out: &mut Vec<Vec<Tag>>) {
    if k == arr.len() {
        out.push(arr.clone());
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, out);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_graph_counts_match_oeis() {
        // A001187(n) for labelled connected graphs
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(connected_graphs(2).len(), 1);
        assert_eq!(connected_graphs(3).len(), 4);
        assert_eq!(connected_graphs(4).len(), 38);
        assert_eq!(connected_graphs(5).len(), 728);
    }

    #[test]
    fn enumerated_graphs_satisfy_invariants() {
        for g in connected_graphs(4) {
            g.check_invariants().unwrap();
            assert!(crate::algo::is_connected(&g));
        }
    }

    #[test]
    fn tag_pattern_counts() {
        // span ≤ 1 on 3 nodes: 2^3 − 1 (all-ones excluded for missing 0)
        assert_eq!(tag_patterns(3, 1).len(), 7);
        // span ≤ 2 on 2 nodes: 3² − 2² = 5
        assert_eq!(tag_patterns(2, 2).len(), 5);
        // all returned patterns are normalized
        for tags in tag_patterns(3, 2) {
            assert_eq!(*tags.iter().min().unwrap(), 0);
            assert!(tags.iter().all(|&t| t <= 2));
        }
    }

    #[test]
    fn distinct_patterns_are_permutations() {
        let pats = distinct_tag_patterns(4);
        assert_eq!(pats.len(), 24);
        let uniq: radio_util::FxHashSet<_> = pats.iter().collect();
        assert_eq!(uniq.len(), 24);
        for p in &pats {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }
}
