//! Wake-up tag assignment strategies.
//!
//! Feasibility hinges entirely on how tags break (or fail to break) the
//! graph's symmetries, so the experiments need a spectrum of strategies:
//! from fully symmetric (uniform — infeasible beyond a single node) through
//! random with a bounded span, to fully distinct tags (maximally
//! asymmetric).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{Configuration, Tag};
use crate::graph::Graph;

/// Every node gets tag `t` — the fully symmetric assignment; infeasible for
/// any graph with `n ≥ 2` (all nodes share all histories forever).
pub fn uniform(g: Graph, t: Tag) -> Configuration {
    Configuration::with_uniform_tags(g, t).expect("valid graph")
}

/// The tag vector [`random_in_span`] draws, without consuming a graph:
/// `n` independent uniform tags in `0..=span`, shifted so the minimum is
/// 0. Lets sweeps re-tag one shared configuration
/// ([`Configuration::retag`]) instead of rebuilding it per attempt.
pub fn random_tags_in_span(n: usize, span: Tag, rng: &mut impl Rng) -> Vec<Tag> {
    let mut tags: Vec<Tag> = (0..n).map(|_| rng.random_range(0..=span)).collect();
    let lo = tags.iter().copied().min().unwrap_or(0);
    if lo > 0 {
        for t in &mut tags {
            *t -= lo;
        }
    }
    tags
}

/// Independent uniform tags in `0..=span`, normalized so the minimum is 0
/// (hence the realized span may be smaller than requested).
pub fn random_in_span(g: Graph, span: Tag, rng: &mut impl Rng) -> Configuration {
    let tags = random_tags_in_span(g.node_count(), span, rng);
    Configuration::new(g, tags).expect("valid graph")
}

/// Distinct tags `0..n` in random order: the maximally asymmetric
/// assignment (span `n − 1`).
pub fn distinct_shuffled(g: Graph, rng: &mut impl Rng) -> Configuration {
    let n = g.node_count();
    let mut tags: Vec<Tag> = (0..n as Tag).collect();
    tags.shuffle(rng);
    Configuration::new(g, tags).expect("valid graph")
}

/// Tags equal to BFS depth from node 0, scaled by `step`. Wakes the network
/// outward from a root — a natural "deployment wave" scenario.
pub fn bfs_wave(g: Graph, step: Tag) -> Configuration {
    let depths = crate::algo::bfs_distances(&g, 0);
    let tags: Vec<Tag> = depths
        .iter()
        .map(|&d| {
            assert_ne!(d, u32::MAX, "bfs_wave requires a connected graph");
            Tag::from(d) * step
        })
        .collect();
    Configuration::new(g, tags).expect("valid graph")
}

/// Exactly two tag values: nodes in `late` get tag `span`, everyone else 0.
/// Used to construct near-symmetric configurations.
pub fn two_values(g: Graph, late: &[crate::graph::NodeId], span: Tag) -> Configuration {
    let n = g.node_count();
    let mut tags = vec![0 as Tag; n];
    for &v in late {
        tags[v as usize] = span;
    }
    Configuration::new(g, tags).expect("valid graph")
}

/// Random balanced two-value assignment: each node tags 0 or `span` with
/// probability 1/2.
pub fn coin_flip(g: Graph, span: Tag, rng: &mut impl Rng) -> Configuration {
    let n = g.node_count();
    let tags: Vec<Tag> = (0..n)
        .map(|_| if rng.random_bool(0.5) { span } else { 0 })
        .collect();
    Configuration::new(g, tags).expect("valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use radio_util::rng::rng_from;

    #[test]
    fn uniform_has_zero_span() {
        let c = uniform(generators::cycle(5), 3);
        assert_eq!(c.span(), 0);
        assert!(c.tags().iter().all(|&t| t == 3));
    }

    #[test]
    fn random_in_span_is_normalized_and_bounded() {
        let mut rng = rng_from(5);
        let c = random_in_span(generators::path(40), 6, &mut rng);
        assert!(c.is_normalized());
        assert!(c.span() <= 6);
    }

    #[test]
    fn distinct_tags_are_a_permutation() {
        let mut rng = rng_from(5);
        let c = distinct_shuffled(generators::star(10), &mut rng);
        let mut sorted = c.tags().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<Tag>>());
        assert_eq!(c.span(), 9);
    }

    #[test]
    fn bfs_wave_matches_depth() {
        let c = bfs_wave(generators::path(4), 2);
        assert_eq!(c.tags(), &[0, 2, 4, 6]);
    }

    #[test]
    fn two_values_places_late_set() {
        let c = two_values(generators::path(4), &[1, 3], 5);
        assert_eq!(c.tags(), &[0, 5, 0, 5]);
    }

    #[test]
    fn coin_flip_uses_both_values_eventually() {
        let mut rng = rng_from(1);
        let c = coin_flip(generators::complete(32), 4, &mut rng);
        assert!(c.tags().contains(&0));
        assert!(c.tags().contains(&4));
    }
}
