//! Wake-up tag assignment strategies.
//!
//! Feasibility hinges entirely on how tags break (or fail to break) the
//! graph's symmetries, so the experiments need a spectrum of strategies:
//! from fully symmetric (uniform — infeasible beyond a single node) through
//! random with a bounded span, to fully distinct tags (maximally
//! asymmetric).

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{Configuration, Tag};
use crate::graph::Graph;

/// A named tag-placement strategy: how a campaign cell turns its span
/// budget `σ` into a tag vector.
///
/// The literature's interesting regimes live exactly here — dedicated
/// schedules only diverge from universal ones under *adversarial* tag
/// placements, which a single uniform draw never produces. All strategies
/// shift-normalize their output (minimum tag 0), like
/// [`random_tags_in_span`], because configurations are considered up to a
/// common shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TagStrategy {
    /// Independent uniform draws in `0..=span` — the legacy behaviour and
    /// the default.
    #[default]
    Uniform,
    /// Tags packed into a narrow sub-window of width `max(1, span/8)`:
    /// the realized span is far below the budget, the near-symmetric
    /// regime where refinement is slow.
    Clustered,
    /// Every tag pushed to a span endpoint (0 or `span`): a two-valued
    /// coin-flip placement, maximal per-step asymmetry with minimal tag
    /// diversity.
    Extremes,
    /// Deterministic arithmetic progression: node `v` gets
    /// `(v · stride) mod (span + 1)` — no randomness, evenly spaced wake
    /// times folded into the span window.
    Arith {
        /// Progression stride (`≥ 1`).
        stride: u64,
    },
}

impl TagStrategy {
    /// Every strategy, in declaration order, with a representative stride
    /// for the arithmetic one — the axis the CI matrix smoke sweeps.
    pub const ALL: [TagStrategy; 4] = [
        TagStrategy::Uniform,
        TagStrategy::Clustered,
        TagStrategy::Extremes,
        TagStrategy::Arith { stride: 2 },
    ];

    /// Draws a tag vector for `n` nodes under span budget `span`. The
    /// output is shift-normalized (minimum 0) and every tag is ≤ `span`.
    /// [`TagStrategy::Arith`] ignores the RNG entirely.
    pub fn draw(&self, n: usize, span: Tag, rng: &mut impl Rng) -> Vec<Tag> {
        match *self {
            TagStrategy::Uniform => random_tags_in_span(n, span, rng),
            TagStrategy::Clustered => {
                let width = if span == 0 { 0 } else { (span / 8).max(1) };
                random_tags_in_span(n, width, rng)
            }
            TagStrategy::Extremes => {
                let tags: Vec<Tag> = (0..n)
                    .map(|_| if rng.random_bool(0.5) { span } else { 0 })
                    .collect();
                normalize_min_to_zero(tags)
            }
            TagStrategy::Arith { stride } => {
                // 128-bit arithmetic: `v · stride` can exceed u64 for large
                // strides, and `span + 1` overflows at span = u64::MAX.
                let modulus = u128::from(span) + 1;
                let tags = (0..n as u128)
                    .map(|v| ((v * u128::from(stride)) % modulus) as Tag)
                    .collect();
                normalize_min_to_zero(tags)
            }
        }
    }

    /// Builds a configuration by drawing tags for the graph under this
    /// strategy — the strategy-parametric generalization of
    /// [`random_in_span`].
    pub fn configure(&self, g: Graph, span: Tag, rng: &mut impl Rng) -> Configuration {
        let tags = self.draw(g.node_count(), span, rng);
        Configuration::new(g, tags).expect("valid graph")
    }
}

impl std::str::FromStr for TagStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<TagStrategy, String> {
        match s {
            "uniform" => Ok(TagStrategy::Uniform),
            "clustered" => Ok(TagStrategy::Clustered),
            "extremes" => Ok(TagStrategy::Extremes),
            _ => match s.strip_prefix("arith:") {
                Some(stride) => {
                    let stride: u64 = stride
                        .parse()
                        .map_err(|_| format!("`{s}`: stride must be a number"))?;
                    if stride == 0 {
                        return Err(format!(
                            "`{s}`: stride must be ≥ 1 (stride 0 is the all-equal \
                             assignment, which is never feasible beyond one node)"
                        ));
                    }
                    Ok(TagStrategy::Arith { stride })
                }
                None => Err(format!(
                    "unknown tag strategy `{s}` (expected uniform, clustered, extremes, \
                     or arith:<stride>)"
                )),
            },
        }
    }
}

impl fmt::Display for TagStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TagStrategy::Uniform => write!(f, "uniform"),
            TagStrategy::Clustered => write!(f, "clustered"),
            TagStrategy::Extremes => write!(f, "extremes"),
            TagStrategy::Arith { stride } => write!(f, "arith:{stride}"),
        }
    }
}

/// Shifts the vector so its minimum is 0 (no-op when already normalized).
fn normalize_min_to_zero(mut tags: Vec<Tag>) -> Vec<Tag> {
    let lo = tags.iter().copied().min().unwrap_or(0);
    if lo > 0 {
        for t in &mut tags {
            *t -= lo;
        }
    }
    tags
}

/// Every node gets tag `t` — the fully symmetric assignment; infeasible for
/// any graph with `n ≥ 2` (all nodes share all histories forever).
pub fn uniform(g: Graph, t: Tag) -> Configuration {
    Configuration::with_uniform_tags(g, t).expect("valid graph")
}

/// The tag vector [`random_in_span`] draws, without consuming a graph:
/// `n` independent uniform tags in `0..=span`, shifted so the minimum is
/// 0. Lets sweeps re-tag one shared configuration
/// ([`Configuration::retag`]) instead of rebuilding it per attempt.
pub fn random_tags_in_span(n: usize, span: Tag, rng: &mut impl Rng) -> Vec<Tag> {
    let mut tags: Vec<Tag> = (0..n).map(|_| rng.random_range(0..=span)).collect();
    let lo = tags.iter().copied().min().unwrap_or(0);
    if lo > 0 {
        for t in &mut tags {
            *t -= lo;
        }
    }
    tags
}

/// Independent uniform tags in `0..=span`, normalized so the minimum is 0
/// (hence the realized span may be smaller than requested).
pub fn random_in_span(g: Graph, span: Tag, rng: &mut impl Rng) -> Configuration {
    let tags = random_tags_in_span(g.node_count(), span, rng);
    Configuration::new(g, tags).expect("valid graph")
}

/// Distinct tags `0..n` in random order: the maximally asymmetric
/// assignment (span `n − 1`).
pub fn distinct_shuffled(g: Graph, rng: &mut impl Rng) -> Configuration {
    let n = g.node_count();
    let mut tags: Vec<Tag> = (0..n as Tag).collect();
    tags.shuffle(rng);
    Configuration::new(g, tags).expect("valid graph")
}

/// Tags equal to BFS depth from node 0, scaled by `step`. Wakes the network
/// outward from a root — a natural "deployment wave" scenario.
pub fn bfs_wave(g: Graph, step: Tag) -> Configuration {
    let depths = crate::algo::bfs_distances(&g, 0);
    let tags: Vec<Tag> = depths
        .iter()
        .map(|&d| {
            assert_ne!(d, u32::MAX, "bfs_wave requires a connected graph");
            Tag::from(d) * step
        })
        .collect();
    Configuration::new(g, tags).expect("valid graph")
}

/// Exactly two tag values: nodes in `late` get tag `span`, everyone else 0.
/// Used to construct near-symmetric configurations.
pub fn two_values(g: Graph, late: &[crate::graph::NodeId], span: Tag) -> Configuration {
    let n = g.node_count();
    let mut tags = vec![0 as Tag; n];
    for &v in late {
        tags[v as usize] = span;
    }
    Configuration::new(g, tags).expect("valid graph")
}

/// Random balanced two-value assignment: each node tags 0 or `span` with
/// probability 1/2.
pub fn coin_flip(g: Graph, span: Tag, rng: &mut impl Rng) -> Configuration {
    let n = g.node_count();
    let tags: Vec<Tag> = (0..n)
        .map(|_| if rng.random_bool(0.5) { span } else { 0 })
        .collect();
    Configuration::new(g, tags).expect("valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use radio_util::rng::rng_from;

    #[test]
    fn uniform_has_zero_span() {
        let c = uniform(generators::cycle(5), 3);
        assert_eq!(c.span(), 0);
        assert!(c.tags().iter().all(|&t| t == 3));
    }

    #[test]
    fn random_in_span_is_normalized_and_bounded() {
        let mut rng = rng_from(5);
        let c = random_in_span(generators::path(40), 6, &mut rng);
        assert!(c.is_normalized());
        assert!(c.span() <= 6);
    }

    #[test]
    fn distinct_tags_are_a_permutation() {
        let mut rng = rng_from(5);
        let c = distinct_shuffled(generators::star(10), &mut rng);
        let mut sorted = c.tags().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<Tag>>());
        assert_eq!(c.span(), 9);
    }

    #[test]
    fn bfs_wave_matches_depth() {
        let c = bfs_wave(generators::path(4), 2);
        assert_eq!(c.tags(), &[0, 2, 4, 6]);
    }

    #[test]
    fn two_values_places_late_set() {
        let c = two_values(generators::path(4), &[1, 3], 5);
        assert_eq!(c.tags(), &[0, 5, 0, 5]);
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in TagStrategy::ALL {
            let parsed: TagStrategy = strategy.to_string().parse().unwrap();
            assert_eq!(parsed, strategy);
        }
        assert_eq!(
            "arith:7".parse::<TagStrategy>(),
            Ok(TagStrategy::Arith { stride: 7 })
        );
        assert!("arith:0".parse::<TagStrategy>().is_err());
        assert!("bursty".parse::<TagStrategy>().is_err());
        assert_eq!(TagStrategy::default(), TagStrategy::Uniform);
    }

    #[test]
    fn every_strategy_is_normalized_and_span_bounded() {
        let mut rng = rng_from(3);
        for strategy in TagStrategy::ALL {
            for span in [0u64, 1, 5, 100] {
                let tags = strategy.draw(24, span, &mut rng);
                assert_eq!(tags.len(), 24, "{strategy} σ={span}");
                assert_eq!(
                    tags.iter().copied().min(),
                    Some(0),
                    "{strategy} σ={span}: normalized"
                );
                assert!(
                    tags.iter().all(|&t| t <= span),
                    "{strategy} σ={span}: bounded"
                );
            }
        }
    }

    #[test]
    fn uniform_strategy_is_the_legacy_draw() {
        // TagStrategy::Uniform must reproduce random_tags_in_span exactly:
        // campaigns that predate the strategy axis keep their rows.
        let a = TagStrategy::Uniform.draw(16, 9, &mut rng_from(11));
        let b = random_tags_in_span(16, 9, &mut rng_from(11));
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_packs_a_narrow_window() {
        let tags = TagStrategy::Clustered.draw(64, 1000, &mut rng_from(5));
        let hi = tags.iter().copied().max().unwrap();
        assert!(hi <= 125, "width is span/8, got realized span {hi}");
        // tiny spans degrade gracefully to width 1 / width 0
        let tiny = TagStrategy::Clustered.draw(8, 3, &mut rng_from(5));
        assert!(tiny.iter().all(|&t| t <= 1));
        let zero = TagStrategy::Clustered.draw(8, 0, &mut rng_from(5));
        assert!(zero.iter().all(|&t| t == 0));
    }

    #[test]
    fn extremes_is_two_valued() {
        let span = 50;
        let tags = TagStrategy::Extremes.draw(64, span, &mut rng_from(8));
        assert!(tags.iter().all(|&t| t == 0 || t == span));
        assert!(tags.contains(&0) && tags.contains(&span));
    }

    #[test]
    fn arith_is_deterministic_and_wraps() {
        let mut rng_a = rng_from(1);
        let mut rng_b = rng_from(999);
        let s = TagStrategy::Arith { stride: 3 };
        // RNG-independent: two different streams draw the same vector
        assert_eq!(s.draw(10, 7, &mut rng_a), s.draw(10, 7, &mut rng_b));
        assert_eq!(s.draw(6, 7, &mut rng_a), vec![0, 3, 6, 1, 4, 7]);
        // span 0 collapses to the all-zero assignment
        assert_eq!(s.draw(4, 0, &mut rng_a), vec![0; 4]);
        // extreme parameters must not overflow: span = u64::MAX (the
        // modulus is 2^64) and a stride whose products exceed u64
        let huge = TagStrategy::Arith { stride: u64::MAX };
        let tags = huge.draw(4, u64::MAX, &mut rng_a);
        assert_eq!(tags.len(), 4);
        assert_eq!(tags[0], 0);
        let wide = TagStrategy::Arith {
            stride: u64::MAX / 2,
        };
        assert_eq!(wide.draw(5, 9, &mut rng_a).len(), 5);
    }

    #[test]
    fn configure_builds_valid_configurations() {
        let mut rng = rng_from(2);
        for strategy in TagStrategy::ALL {
            let c = strategy.configure(generators::cycle(9), 12, &mut rng);
            assert_eq!(c.size(), 9);
            assert!(c.is_normalized(), "{strategy}");
            assert!(c.span() <= 12, "{strategy}");
        }
    }

    #[test]
    fn coin_flip_uses_both_values_eventually() {
        let mut rng = rng_from(1);
        let c = coin_flip(generators::complete(32), 4, &mut rng);
        assert!(c.tags().contains(&0));
        assert!(c.tags().contains(&4));
    }
}
