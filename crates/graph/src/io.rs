//! Configuration IO: a line-oriented text format plus DOT export.
//!
//! The text format is deliberately small and fully round-trippable:
//!
//! ```text
//! # comments and blank lines are ignored
//! config <n> <m>
//! tags <t_0> <t_1> … <t_{n-1}>
//! edge <u> <v>        (m lines, any order)
//! ```
//!
//! Example for the paper's `H_2` (path `a‒b‒c‒d`, tags `2 0 0 3`):
//!
//! ```text
//! config 4 3
//! tags 2 0 0 3
//! edge 0 1
//! edge 1 2
//! edge 2 3
//! ```

use std::fmt::Write as _;

use crate::config::{ConfigError, Configuration, Tag};
use crate::graph::{Graph, GraphError};

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The reason the line was rejected.
        reason: String,
    },
    /// The `config` header is missing or duplicated.
    Header(String),
    /// Edge/tag counts did not match the header.
    CountMismatch(String),
    /// Structural error from graph construction.
    Graph(GraphError),
    /// Semantic error from configuration validation.
    Config(ConfigError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Header(msg) => write!(f, "header: {msg}"),
            ParseError::CountMismatch(msg) => write!(f, "count mismatch: {msg}"),
            ParseError::Graph(e) => write!(f, "graph: {e}"),
            ParseError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

impl From<ConfigError> for ParseError {
    fn from(e: ConfigError) -> Self {
        ParseError::Config(e)
    }
}

/// Serializes a configuration to the text format.
pub fn to_text(config: &Configuration) -> String {
    let g = config.graph();
    let mut out = String::new();
    let _ = writeln!(out, "config {} {}", g.node_count(), g.edge_count());
    let tags: Vec<String> = config.tags().iter().map(|t| t.to_string()).collect();
    let _ = writeln!(out, "tags {}", tags.join(" "));
    for (u, v) in g.edges() {
        let _ = writeln!(out, "edge {u} {v}");
    }
    out
}

/// Parses the text format back into a configuration.
pub fn from_text(text: &str) -> Result<Configuration, ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut tags: Option<Vec<Tag>> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a token");
        let rest: Vec<&str> = parts.collect();
        match directive {
            "config" => {
                if header.is_some() {
                    return Err(ParseError::Header("duplicate `config` line".into()));
                }
                if rest.len() != 2 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "`config` needs exactly <n> <m>".into(),
                    });
                }
                let n = rest[0].parse::<usize>().map_err(|e| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad n: {e}"),
                })?;
                let m = rest[1].parse::<usize>().map_err(|e| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad m: {e}"),
                })?;
                header = Some((n, m));
            }
            "tags" => {
                if tags.is_some() {
                    return Err(ParseError::Header("duplicate `tags` line".into()));
                }
                let parsed: Result<Vec<Tag>, _> = rest.iter().map(|s| s.parse::<Tag>()).collect();
                tags = Some(parsed.map_err(|e| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad tag: {e}"),
                })?);
            }
            "edge" => {
                if rest.len() != 2 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "`edge` needs exactly <u> <v>".into(),
                    });
                }
                let u = rest[0].parse::<u32>().map_err(|e| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad endpoint: {e}"),
                })?;
                let v = rest[1].parse::<u32>().map_err(|e| ParseError::BadLine {
                    line: line_no,
                    reason: format!("bad endpoint: {e}"),
                })?;
                edges.push((u, v));
            }
            other => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    reason: format!("unknown directive `{other}`"),
                });
            }
        }
    }

    let (n, m) = header.ok_or_else(|| ParseError::Header("missing `config` line".into()))?;
    let tags = tags.ok_or_else(|| ParseError::Header("missing `tags` line".into()))?;
    if tags.len() != n {
        return Err(ParseError::CountMismatch(format!(
            "{} tags for n={n}",
            tags.len()
        )));
    }
    if edges.len() != m {
        return Err(ParseError::CountMismatch(format!(
            "{} edges, header says {m}",
            edges.len()
        )));
    }
    let graph = Graph::from_edges(n, &edges)?;
    if graph.edge_count() != m {
        return Err(ParseError::CountMismatch(format!(
            "{} distinct edges after dedup, header says {m}",
            graph.edge_count()
        )));
    }
    Ok(Configuration::new(graph, tags)?)
}

/// Exports the configuration as Graphviz DOT, labelling every node with its
/// index and tag (`v3\nt=5`).
pub fn to_dot(config: &Configuration, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in config.graph().nodes() {
        let _ = writeln!(out, "  v{v} [label=\"v{v}\\nt={}\"];", config.tag(v));
    }
    for (u, v) in config.graph().edges() {
        let _ = writeln!(out, "  v{u} -- v{v};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn round_trip_h_m() {
        let c = families::h_m(2);
        let text = to_text(&c);
        let back = from_text(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parses_with_comments_and_blank_lines() {
        let text = "# demo\n\nconfig 3 2\ntags 0 1 2\n# middle\nedge 0 1\nedge 1 2\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.size(), 3);
        assert_eq!(c.tags(), &[0, 1, 2]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(from_text(""), Err(ParseError::Header(_))));
        assert!(matches!(
            from_text("config 2 1\ntags 0\nedge 0 1\n"),
            Err(ParseError::CountMismatch(_))
        ));
        assert!(matches!(
            from_text("config 2 2\ntags 0 1\nedge 0 1\n"),
            Err(ParseError::CountMismatch(_))
        ));
        assert!(matches!(
            from_text("config 2 1\ntags 0 1\nedge 0 0\n"),
            Err(ParseError::Graph(GraphError::SelfLoop(0)))
        ));
        assert!(matches!(
            from_text("config 2 1\ntags 0 1\nfrob 0 1\n"),
            Err(ParseError::BadLine { .. })
        ));
        assert!(matches!(
            from_text("config 4 2\ntags 0 1 2 3\nedge 0 1\nedge 2 3\n"),
            Err(ParseError::Config(ConfigError::Disconnected))
        ));
    }

    #[test]
    fn duplicate_edges_detected_via_header_mismatch() {
        let text = "config 3 3\ntags 0 1 2\nedge 0 1\nedge 1 0\nedge 1 2\n";
        assert!(matches!(from_text(text), Err(ParseError::CountMismatch(_))));
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let c = families::s_m(1);
        let dot = to_dot(&c, "s1");
        assert!(dot.contains("graph s1 {"));
        for v in 0..4 {
            assert!(dot.contains(&format!("v{v} [label=")));
        }
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v2 -- v3;"));
    }

    #[test]
    fn example_in_docs_parses() {
        let text = "config 4 3\ntags 2 0 0 3\nedge 0 1\nedge 1 2\nedge 2 3\n";
        let c = from_text(text).unwrap();
        assert_eq!(c, families::h_m(2));
    }
}
