//! Seeded random graph constructors.
//!
//! All constructors take an explicit `&mut impl Rng`; experiments derive
//! their RNGs via [`radio_util::rng`] so results are reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Uniform random labelled tree on `n` nodes via a random attachment
/// sequence: node `v` (in a random order) attaches to a uniformly chosen
/// earlier node. This is not the uniform spanning-tree distribution (that
/// would need Prüfer decoding) but produces well-varied trees and is what
/// the feasibility experiments need: diverse connected topologies.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = order[rng.random_range(0..i)];
        g.add_edge(parent, order[i]).unwrap();
    }
    g
}

/// Connected Erdős–Rényi-style graph: a random tree backbone (guaranteeing
/// connectivity) plus each remaining pair added independently with
/// probability `p`.
///
/// For `p = 0` this is exactly a random tree; for `p = 1` the complete
/// graph.
pub fn gnp_connected(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut g = random_tree(n, rng);
    if p > 0.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if !g.has_edge(u, v) && rng.random_bool(p) {
                    g.add_edge(u, v).unwrap();
                }
            }
        }
    }
    g
}

/// Connected graph with exactly `extra` edges beyond a spanning tree
/// (i.e. `n - 1 + extra` edges), sampled by rejection over non-edges.
///
/// # Panics
/// Panics if `extra` exceeds the number of available non-tree pairs.
pub fn random_connected(n: usize, extra: usize, rng: &mut impl Rng) -> Graph {
    let mut g = random_tree(n, rng);
    let max_extra = n * (n - 1) / 2 - (n.saturating_sub(1));
    assert!(
        extra <= max_extra,
        "requested {extra} extra edges, only {max_extra} available"
    );
    let mut added = 0;
    while added < extra {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    g
}

/// Random caterpillar: a spine of `spine` nodes, with `leaves` pendant
/// leaves attached to uniformly chosen spine nodes.
pub fn random_caterpillar(spine: usize, leaves: usize, rng: &mut impl Rng) -> Graph {
    assert!(spine >= 1, "spine must be non-empty");
    let n = spine + leaves;
    let mut g = Graph::new(n);
    for s in 1..spine {
        g.add_edge((s - 1) as NodeId, s as NodeId).unwrap();
    }
    for leaf in spine..n {
        let s = rng.random_range(0..spine) as NodeId;
        g.add_edge(s, leaf as NodeId).unwrap();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use radio_util::rng::rng_from;

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = rng_from(7);
        for n in [1usize, 2, 3, 10, 64] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g), "n={n}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn random_tree_is_seed_deterministic() {
        let a = random_tree(20, &mut rng_from(42));
        let b = random_tree(20, &mut rng_from(42));
        assert_eq!(a.edges(), b.edges());
        let c = random_tree(20, &mut rng_from(43));
        assert_ne!(
            a.edges(),
            c.edges(),
            "different seed should differ (overwhelmingly)"
        );
    }

    #[test]
    fn gnp_connected_spans_density_range() {
        let mut rng = rng_from(11);
        let sparse = gnp_connected(12, 0.0, &mut rng);
        assert_eq!(sparse.edge_count(), 11);
        let dense = gnp_connected(12, 1.0, &mut rng);
        assert_eq!(dense.edge_count(), 12 * 11 / 2);
        let mid = gnp_connected(12, 0.3, &mut rng);
        assert!(is_connected(&mid));
        assert!(mid.edge_count() >= 11);
    }

    #[test]
    fn random_connected_edge_budget() {
        let mut rng = rng_from(3);
        let g = random_connected(10, 5, &mut rng);
        assert_eq!(g.edge_count(), 9 + 5);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "extra edges")]
    fn random_connected_rejects_overfull() {
        let mut rng = rng_from(3);
        let _ = random_connected(4, 100, &mut rng);
    }

    #[test]
    fn random_caterpillar_shape() {
        let mut rng = rng_from(9);
        let g = random_caterpillar(5, 7, &mut rng);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 11);
        assert!(is_connected(&g));
        // all leaves have degree 1
        assert!((5..12).all(|v| g.degree(v) == 1));
    }
}
