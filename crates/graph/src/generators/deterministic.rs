//! Deterministic graph constructors.

use crate::graph::{Graph, NodeId};

/// Path `P_n`: nodes `0‒1‒…‒(n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge((v - 1) as NodeId, v as NodeId).unwrap();
    }
    g
}

/// Cycle `C_n` (requires `n ≥ 3`).
///
/// # Panics
/// Panics if `n < 3` (a simple graph has no 1- or 2-cycles).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let mut g = path(n);
    g.add_edge(0, (n - 1) as NodeId).unwrap();
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 0..n {
        g.reserve_neighbors(v as NodeId, n.saturating_sub(1));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            g.push_edge_unchecked(u as NodeId, v as NodeId);
        }
    }
    g
}

/// Star `S_{n-1}`: node 0 is the centre, nodes `1..n` are leaves
/// (requires `n ≥ 1`).
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v as NodeId).unwrap();
    }
    g
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        g.reserve_neighbors(u as NodeId, b);
    }
    for v in 0..b {
        g.reserve_neighbors((a + v) as NodeId, a);
    }
    for u in 0..a {
        for v in 0..b {
            g.push_edge_unchecked(u as NodeId, (a + v) as NodeId);
        }
    }
    g
}

/// `rows × cols` grid; node `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).unwrap();
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).unwrap();
            }
        }
    }
    g
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes; nodes adjacent iff their
/// indices differ in one bit.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1usize << bit);
            if v < w {
                g.add_edge(v as NodeId, w as NodeId).unwrap();
            }
        }
    }
    g
}

/// Balanced `k`-ary tree with the given number of nodes, filled level by
/// level: node `v ≥ 1` attaches to `(v - 1) / k`.
///
/// # Panics
/// Panics if `k == 0`.
pub fn balanced_tree(n: usize, k: usize) -> Graph {
    assert!(k > 0, "arity must be positive");
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(((v - 1) / k) as NodeId, v as NodeId).unwrap();
    }
    g
}

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` pendant
/// leaves. Total nodes `spine * (1 + legs)`. Spine nodes come first
/// (`0..spine`), then the leaves of spine node `s` are consecutive.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut g = Graph::new(n);
    for s in 1..spine {
        g.add_edge((s - 1) as NodeId, s as NodeId).unwrap();
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            g.add_edge(s as NodeId, next as NodeId).unwrap();
            next += 1;
        }
    }
    g
}

/// Spider: `legs` paths of length `len` glued at a centre node 0. Total
/// nodes `1 + legs * len`. Leg `i` occupies nodes
/// `1 + i*len .. 1 + (i+1)*len`, with the node closest to the centre first.
pub fn spider(legs: usize, len: usize) -> Graph {
    let n = 1 + legs * len;
    let mut g = Graph::new(n);
    for i in 0..legs {
        let base = (1 + i * len) as NodeId;
        if len > 0 {
            g.add_edge(0, base).unwrap();
            for j in 1..len {
                g.add_edge(base + (j - 1) as NodeId, base + j as NodeId)
                    .unwrap();
            }
        }
    }
    g
}

/// Barbell: two `K_k` cliques joined by a path of `bridge` intermediate
/// nodes. Total nodes `2k + bridge` (requires `k ≥ 1`).
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 1, "clique size must be at least 1");
    let n = 2 * k + bridge;
    let mut g = Graph::new(n);
    // left clique 0..k, right clique k+bridge..n
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u as NodeId, v as NodeId).unwrap();
        }
    }
    let right0 = k + bridge;
    for u in right0..n {
        for v in (u + 1)..n {
            g.add_edge(u as NodeId, v as NodeId).unwrap();
        }
    }
    // bridge path k-1 ↔ k ↔ … ↔ k+bridge (endpoint cliques attach at node
    // k-1 and node right0).
    let mut prev = (k - 1) as NodeId;
    for b in 0..bridge {
        let cur = (k + b) as NodeId;
        g.add_edge(prev, cur).unwrap();
        prev = cur;
    }
    g.add_edge(prev, right0 as NodeId).unwrap();
    g
}

/// Wheel `W_n`: a cycle of `n−1` rim nodes (`1..n`) plus hub node 0
/// adjacent to all of them (requires `n ≥ 4`).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel requires n >= 4, got {n}");
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v as NodeId).unwrap();
        let next = if v == n - 1 { 1 } else { v + 1 };
        g.add_edge(v as NodeId, next as NodeId).unwrap();
    }
    g
}

/// Ladder: two paths of `len` nodes joined by rungs. Node `(side, i)` is
/// `side * len + i`. Total nodes `2·len` (requires `len ≥ 1`).
pub fn ladder(len: usize) -> Graph {
    assert!(len >= 1, "ladder requires len >= 1");
    let mut g = Graph::new(2 * len);
    for i in 0..len {
        if i + 1 < len {
            g.add_edge(i as NodeId, (i + 1) as NodeId).unwrap();
            g.add_edge((len + i) as NodeId, (len + i + 1) as NodeId)
                .unwrap();
        }
        g.add_edge(i as NodeId, (len + i) as NodeId).unwrap();
    }
    g
}

/// `rows × cols` torus: the grid with wraparound in both dimensions
/// (requires `rows, cols ≥ 3` so the graph stays simple).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, (c + 1) % cols)).unwrap();
            g.add_edge(id(r, c), id((r + 1) % rows, c)).unwrap();
        }
    }
    g
}

/// Double star: two adjacent hubs (`0` and `1`) with `a` leaves on the
/// first and `b` on the second. Total nodes `2 + a + b`.
pub fn double_star(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(2 + a + b);
    g.add_edge(0, 1).unwrap();
    for leaf in 0..a {
        g.add_edge(0, (2 + leaf) as NodeId).unwrap();
    }
    for leaf in 0..b {
        g.add_edge(1, (2 + a + leaf) as NodeId).unwrap();
    }
    g
}

/// Lollipop: a `K_k` clique with a pendant path of `tail` nodes attached to
/// clique node `k-1`. Total nodes `k + tail` (requires `k ≥ 1`).
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 1, "clique size must be at least 1");
    let n = k + tail;
    let mut g = Graph::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u as NodeId, v as NodeId).unwrap();
        }
    }
    let mut prev = (k - 1) as NodeId;
    for t in 0..tail {
        let cur = (k + t) as NodeId;
        g.add_edge(prev, cur).unwrap();
        prev = cur;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(is_connected(&g));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(!g.has_edge(0, 1), "no intra-side edges");
        assert!(g.has_edge(0, 3));
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(5)); // (3-1)+(4-1)
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32); // d * 2^(d-1)
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(10, 2);
        assert_eq!(g.edge_count(), 9);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 11); // tree
        assert!(is_connected(&g));
        // interior spine node: 2 spine edges + 2 legs
        assert_eq!(g.degree(1), 4);
    }

    #[test]
    fn spider_shape() {
        let g = spider(3, 4);
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 3);
        assert_eq!(diameter(&g), Some(8));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 10);
        // 2 * C(4,2) + 3 bridge edges
        assert_eq!(g.edge_count(), 12 + 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_no_bridge() {
        let g = barbell(3, 0);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6 + 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert!(is_connected(&g));
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6); // hub + 5-cycle rim
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10); // 5 spokes + 5 rim
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 3));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn wheel_too_small() {
        let _ = wheel(3);
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 3 + 3 + 4); // two rails + rungs
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // interior rail
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn ladder_single_rung() {
        let g = ladder(1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 24); // 2 edges per node
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3)); // ⌊3/2⌋ + ⌊4/2⌋
    }

    #[test]
    #[should_panic(expected = "rows, cols >= 3")]
    fn torus_too_small() {
        let _ = torus(2, 5);
    }

    #[test]
    fn double_star_shape() {
        let g = double_star(3, 2);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 4); // hub + 3 leaves
        assert_eq!(g.degree(1), 3); // hub + 2 leaves
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn double_star_no_leaves() {
        let g = double_star(0, 0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
