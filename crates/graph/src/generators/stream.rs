//! CSR-direct streaming generators: every family as an edge *stream*
//! consumed twice — once to pre-count degrees, once to fill a
//! [`CsrBuilder`] — so million-node configurations freeze straight into
//! CSR form without an intermediate adjacency-list [`Graph`](crate::Graph).
//!
//! The contract mirrored by the `csr_direct_matches_graph_route` property
//! suite: for every family and seed, the [`Csr`] produced here is
//! byte-identical (offsets + targets) to `Graph` construction followed by
//! [`Csr::from_graph`]. For the seeded families that means **seed-stream
//! equivalence**: each pass re-creates the RNG from the same derived seed
//! and consumes draws in exactly the order the `Graph` generator does,
//! including the `has_edge` short-circuits that skip coin flips (tracked
//! here with an explicit edge set, since there is no graph to query).
//!
//! The four simplest families skip the dry pass entirely — their degree
//! sequences are closed-form.

use rand::seq::SliceRandom;
use rand::Rng;

use radio_util::rng::rng_from;
use radio_util::FxHashSet;

use crate::csr::{Csr, CsrBuilder};
use crate::graph::NodeId;

/// Builds a CSR from an edge stream in two passes: a counting pass into a
/// degree vector, then a fill pass into the exact-size builder. `stream`
/// must emit the identical edge multiset on both invocations.
fn csr_two_pass(n: usize, stream: impl Fn(&mut dyn FnMut(NodeId, NodeId))) -> Csr {
    let mut degrees = vec![0u32; n];
    stream(&mut |u, v| {
        degrees[u as usize] += 1;
        degrees[v as usize] += 1;
    });
    let mut b = CsrBuilder::from_degrees(&degrees);
    stream(&mut |u, v| b.push_edge(u, v));
    b.finish()
}

/// Builds a CSR from a closed-form degree sequence and a single fill pass.
fn csr_counted(degrees: &[u32], stream: impl FnOnce(&mut dyn FnMut(NodeId, NodeId))) -> Csr {
    let mut b = CsrBuilder::from_degrees(degrees);
    stream(&mut |u, v| b.push_edge(u, v));
    b.finish()
}

// --- deterministic families (closed-form degrees where trivial) ---

/// CSR path `P_n`.
pub fn path_csr(n: usize) -> Csr {
    let mut degrees = vec![2u32; n];
    if n >= 1 {
        degrees[0] = if n == 1 { 0 } else { 1 };
        degrees[n - 1] = if n == 1 { 0 } else { 1 };
    }
    csr_counted(&degrees, |emit| {
        for v in 1..n {
            emit((v - 1) as NodeId, v as NodeId);
        }
    })
}

/// CSR cycle `C_n` (`n ≥ 3`).
pub fn cycle_csr(n: usize) -> Csr {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    csr_counted(&vec![2u32; n], |emit| {
        for v in 1..n {
            emit((v - 1) as NodeId, v as NodeId);
        }
        emit(0, (n - 1) as NodeId);
    })
}

/// CSR star `K_{1,n-1}`.
pub fn star_csr(n: usize) -> Csr {
    let mut degrees = vec![1u32; n];
    if n >= 1 {
        degrees[0] = (n - 1) as u32;
    }
    csr_counted(&degrees, |emit| {
        for v in 1..n {
            emit(0, v as NodeId);
        }
    })
}

/// CSR complete graph `K_n`.
pub fn complete_csr(n: usize) -> Csr {
    csr_counted(&vec![n.saturating_sub(1) as u32; n], |emit| {
        for u in 0..n {
            for v in (u + 1)..n {
                emit(u as NodeId, v as NodeId);
            }
        }
    })
}

/// CSR wheel `W_n` (`n ≥ 4`).
pub fn wheel_csr(n: usize) -> Csr {
    assert!(n >= 4, "wheel requires n >= 4, got {n}");
    csr_two_pass(n, |emit| {
        for v in 1..n {
            emit(0, v as NodeId);
            let next = if v == n - 1 { 1 } else { v + 1 };
            emit(v as NodeId, next as NodeId);
        }
    })
}

/// CSR ladder on `2·len` nodes (`len ≥ 1`).
pub fn ladder_csr(len: usize) -> Csr {
    assert!(len >= 1, "ladder requires len >= 1");
    csr_two_pass(2 * len, |emit| {
        for i in 0..len {
            if i + 1 < len {
                emit(i as NodeId, (i + 1) as NodeId);
                emit((len + i) as NodeId, (len + i + 1) as NodeId);
            }
            emit(i as NodeId, (len + i) as NodeId);
        }
    })
}

/// CSR balanced `k`-ary tree (`k ≥ 1`).
pub fn balanced_tree_csr(n: usize, k: usize) -> Csr {
    assert!(k > 0, "arity must be positive");
    csr_two_pass(n, |emit| {
        for v in 1..n {
            emit(((v - 1) / k) as NodeId, v as NodeId);
        }
    })
}

/// CSR `rows × cols` grid.
pub fn grid_csr(rows: usize, cols: usize) -> Csr {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    csr_two_pass(rows * cols, |emit| {
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    emit(id(r, c), id(r, c + 1));
                }
                if r + 1 < rows {
                    emit(id(r, c), id(r + 1, c));
                }
            }
        }
    })
}

/// CSR `rows × cols` torus (`rows, cols ≥ 3`).
pub fn torus_csr(rows: usize, cols: usize) -> Csr {
    assert!(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    csr_two_pass(rows * cols, |emit| {
        for r in 0..rows {
            for c in 0..cols {
                emit(id(r, c), id(r, (c + 1) % cols));
                emit(id(r, c), id((r + 1) % rows, c));
            }
        }
    })
}

/// CSR `d`-dimensional hypercube.
pub fn hypercube_csr(d: u32) -> Csr {
    let n = 1usize << d;
    csr_two_pass(n, |emit| {
        for v in 0..n {
            for bit in 0..d {
                let w = v ^ (1usize << bit);
                if v < w {
                    emit(v as NodeId, w as NodeId);
                }
            }
        }
    })
}

/// CSR caterpillar: spine of `spine` nodes, `legs` leaves each.
pub fn caterpillar_csr(spine: usize, legs: usize) -> Csr {
    csr_two_pass(spine * (1 + legs), |emit| {
        for s in 1..spine {
            emit((s - 1) as NodeId, s as NodeId);
        }
        let mut next = spine;
        for s in 0..spine {
            for _ in 0..legs {
                emit(s as NodeId, next as NodeId);
                next += 1;
            }
        }
    })
}

/// CSR spider: `legs` paths of length `len` glued at node 0.
pub fn spider_csr(legs: usize, len: usize) -> Csr {
    csr_two_pass(1 + legs * len, |emit| {
        for i in 0..legs {
            let base = (1 + i * len) as NodeId;
            if len > 0 {
                emit(0, base);
                for j in 1..len {
                    emit(base + (j - 1) as NodeId, base + j as NodeId);
                }
            }
        }
    })
}

/// CSR barbell: two `K_k` cliques joined by a `bridge`-node path (`k ≥ 1`).
pub fn barbell_csr(k: usize, bridge: usize) -> Csr {
    assert!(k >= 1, "clique size must be at least 1");
    let n = 2 * k + bridge;
    csr_two_pass(n, |emit| {
        for u in 0..k {
            for v in (u + 1)..k {
                emit(u as NodeId, v as NodeId);
            }
        }
        let right0 = k + bridge;
        for u in right0..n {
            for v in (u + 1)..n {
                emit(u as NodeId, v as NodeId);
            }
        }
        let mut prev = (k - 1) as NodeId;
        for b in 0..bridge {
            let cur = (k + b) as NodeId;
            emit(prev, cur);
            prev = cur;
        }
        emit(prev, right0 as NodeId);
    })
}

/// CSR lollipop: `K_k` clique with a `tail`-node pendant path (`k ≥ 1`).
pub fn lollipop_csr(k: usize, tail: usize) -> Csr {
    assert!(k >= 1, "clique size must be at least 1");
    csr_two_pass(k + tail, |emit| {
        for u in 0..k {
            for v in (u + 1)..k {
                emit(u as NodeId, v as NodeId);
            }
        }
        let mut prev = (k - 1) as NodeId;
        for t in 0..tail {
            let cur = (k + t) as NodeId;
            emit(prev, cur);
            prev = cur;
        }
    })
}

/// CSR double star: adjacent hubs 0 and 1 with `a`/`b` leaves.
pub fn double_star_csr(a: usize, b: usize) -> Csr {
    csr_two_pass(2 + a + b, |emit| {
        emit(0, 1);
        for leaf in 0..a {
            emit(0, (2 + leaf) as NodeId);
        }
        for leaf in 0..b {
            emit(1, (2 + a + leaf) as NodeId);
        }
    })
}

/// CSR complete bipartite `K_{a,b}`.
pub fn complete_bipartite_csr(a: usize, b: usize) -> Csr {
    let mut degrees = vec![b as u32; a];
    degrees.resize(a + b, a as u32);
    csr_counted(&degrees, |emit| {
        for u in 0..a {
            for v in 0..b {
                emit(u as NodeId, (a + v) as NodeId);
            }
        }
    })
}

// --- seeded families (two-pass over the same positional RNG stream) ---

#[inline]
fn edge_key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Streams the random-attachment tree (shuffle + uniform earlier parent),
/// consuming draws exactly like [`random_tree`](crate::generators::random_tree).
fn stream_random_tree(
    n: usize,
    rng: &mut impl Rng,
    emit: &mut impl FnMut(NodeId, NodeId),
) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.random_range(0..i)];
        emit(parent, order[i]);
    }
    order
}

/// CSR random attachment tree, stream-equivalent to
/// [`random_tree`](crate::generators::random_tree) under `rng_from(seed)`.
pub fn random_tree_csr(n: usize, seed: u64) -> Csr {
    csr_two_pass(n, |emit| {
        let mut rng = rng_from(seed);
        stream_random_tree(n, &mut rng, &mut |u, v| emit(u, v));
    })
}

/// CSR connected `G(n, p)`, stream-equivalent to
/// [`gnp_connected`](crate::generators::gnp_connected): the tree backbone's
/// edge set replicates the `!g.has_edge(u, v)` short-circuit — a coin is
/// only flipped for pairs that are not already tree edges.
pub fn gnp_connected_csr(n: usize, p: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    csr_two_pass(n, |emit| {
        let mut rng = rng_from(seed);
        let mut tree: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
        stream_random_tree(n, &mut rng, &mut |u, v| {
            tree.insert(edge_key(u, v));
            emit(u, v);
        });
        if p > 0.0 {
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if !tree.contains(&(u, v)) && rng.random_bool(p) {
                        emit(u, v);
                    }
                }
            }
        }
    })
}

/// CSR tree + `extra` rejection-sampled extra edges, stream-equivalent to
/// [`random_connected`](crate::generators::random_connected): the growing
/// edge set stands in for the graph's `has_edge` in the rejection test.
pub fn random_connected_csr(n: usize, extra: usize, seed: u64) -> Csr {
    let max_extra = n * (n - 1) / 2 - (n.saturating_sub(1));
    assert!(
        extra <= max_extra,
        "requested {extra} extra edges, only {max_extra} available"
    );
    csr_two_pass(n, |emit| {
        let mut rng = rng_from(seed);
        let mut edges: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
        stream_random_tree(n, &mut rng, &mut |u, v| {
            edges.insert(edge_key(u, v));
            emit(u, v);
        });
        let mut added = 0;
        while added < extra {
            let u = rng.random_range(0..n) as NodeId;
            let v = rng.random_range(0..n) as NodeId;
            if u != v && edges.insert(edge_key(u, v)) {
                emit(u, v);
                added += 1;
            }
        }
    })
}

/// CSR random caterpillar, stream-equivalent to
/// [`random_caterpillar`](crate::generators::random_caterpillar).
pub fn random_caterpillar_csr(spine: usize, leaves: usize, seed: u64) -> Csr {
    assert!(spine >= 1, "spine must be non-empty");
    let n = spine + leaves;
    csr_two_pass(n, |emit| {
        let mut rng = rng_from(seed);
        for s in 1..spine {
            emit((s - 1) as NodeId, s as NodeId);
        }
        for leaf in spine..n {
            let s = rng.random_range(0..spine) as NodeId;
            emit(s, leaf as NodeId);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    fn via_graph(g: &Graph) -> Csr {
        Csr::from_graph(g)
    }

    #[test]
    fn deterministic_streams_match_graph_route() {
        assert_eq!(path_csr(6), via_graph(&generators::path(6)));
        assert_eq!(path_csr(1), via_graph(&generators::path(1)));
        assert_eq!(cycle_csr(5), via_graph(&generators::cycle(5)));
        assert_eq!(star_csr(7), via_graph(&generators::star(7)));
        assert_eq!(complete_csr(6), via_graph(&generators::complete(6)));
        assert_eq!(wheel_csr(6), via_graph(&generators::wheel(6)));
        assert_eq!(ladder_csr(4), via_graph(&generators::ladder(4)));
        assert_eq!(
            balanced_tree_csr(10, 2),
            via_graph(&generators::balanced_tree(10, 2))
        );
        assert_eq!(grid_csr(3, 4), via_graph(&generators::grid(3, 4)));
        assert_eq!(torus_csr(3, 4), via_graph(&generators::torus(3, 4)));
        assert_eq!(hypercube_csr(4), via_graph(&generators::hypercube(4)));
        assert_eq!(
            caterpillar_csr(4, 2),
            via_graph(&generators::caterpillar(4, 2))
        );
        assert_eq!(spider_csr(3, 4), via_graph(&generators::spider(3, 4)));
        assert_eq!(barbell_csr(4, 2), via_graph(&generators::barbell(4, 2)));
        assert_eq!(barbell_csr(3, 0), via_graph(&generators::barbell(3, 0)));
        assert_eq!(lollipop_csr(4, 3), via_graph(&generators::lollipop(4, 3)));
        assert_eq!(
            double_star_csr(3, 2),
            via_graph(&generators::double_star(3, 2))
        );
        assert_eq!(
            complete_bipartite_csr(3, 4),
            via_graph(&generators::complete_bipartite(3, 4))
        );
    }

    #[test]
    fn seeded_streams_match_graph_route() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            assert_eq!(
                random_tree_csr(20, seed),
                via_graph(&generators::random_tree(20, &mut rng_from(seed))),
                "random_tree seed {seed}"
            );
            assert_eq!(
                gnp_connected_csr(14, 0.3, seed),
                via_graph(&generators::gnp_connected(14, 0.3, &mut rng_from(seed))),
                "gnp seed {seed}"
            );
            assert_eq!(
                random_connected_csr(12, 6, seed),
                via_graph(&generators::random_connected(12, 6, &mut rng_from(seed))),
                "random_connected seed {seed}"
            );
            assert_eq!(
                random_caterpillar_csr(5, 7, seed),
                via_graph(&generators::random_caterpillar(5, 7, &mut rng_from(seed))),
                "random_caterpillar seed {seed}"
            );
        }
    }
}
