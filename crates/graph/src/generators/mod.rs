//! Graph generators.
//!
//! The deterministic constructors cover the shapes the paper's arguments use
//! (paths for the lower-bound families, rings for the token-ring motivation,
//! stars/trees/grids for degree and diameter extremes); the seeded random
//! constructors drive the feasibility-landscape and scaling experiments.
//!
//! All generators return a [`Graph`](crate::Graph); every connected-by-
//! construction generator is covered by tests asserting connectivity, node
//! and edge counts.

mod deterministic;
mod random;
pub mod stream;

pub use deterministic::{
    balanced_tree, barbell, caterpillar, complete, complete_bipartite, cycle, double_star, grid,
    hypercube, ladder, lollipop, path, spider, star, torus, wheel,
};
pub use random::{gnp_connected, random_caterpillar, random_connected, random_tree};
