//! Elementary graph algorithms used across the workspace: BFS layers,
//! connectivity, eccentricity/diameter, and degree statistics.

use crate::graph::{Graph, NodeId};

/// BFS distances from `src`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    if n == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// True iff the graph is connected (the empty graph counts as connected,
/// the paper never uses it; a singleton is trivially connected).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != u32::MAX)
}

/// True iff the CSR graph is connected — the validation path for
/// CSR-direct configurations, which never materialize a [`Graph`]. Same
/// convention as [`is_connected`]: empty and singleton count as connected.
pub fn is_connected_csr(csr: &crate::csr::Csr) -> bool {
    let n = csr.node_count();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    seen[0] = true;
    queue.push_back(0 as NodeId);
    let mut visited = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in csr.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                visited += 1;
                queue.push_back(v);
            }
        }
    }
    visited == n
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in 0..n as NodeId {
        if comp[s as usize] != usize::MAX {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    count
}

/// Eccentricity of `v` (greatest BFS distance from `v`); `None` if the graph
/// is disconnected from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let d = bfs_distances(g, v);
    let mx = *d.iter().max()?;
    if mx == u32::MAX {
        None
    } else {
        Some(mx)
    }
}

/// Diameter (max eccentricity). `None` for disconnected or empty graphs.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..n as NodeId {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Histogram of node degrees: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.node_count() as NodeId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// True iff the graph is a tree (connected with exactly `n − 1` edges).
pub fn is_tree(g: &Graph) -> bool {
    g.node_count() >= 1 && g.edge_count() == g.node_count() - 1 && is_connected(g)
}

/// The graph centre: all nodes of minimum eccentricity. `None` for
/// disconnected or empty graphs.
///
/// Notable connection to the paper: on the lower-bound family `G_m`, the
/// unique electable node `b_{m+1}` is exactly the centre of the path.
pub fn center(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let eccs: Option<Vec<u32>> = (0..n as NodeId).map(|v| eccentricity(g, v)).collect();
    let eccs = eccs?;
    let best = *eccs.iter().min().expect("non-empty");
    Some(
        (0..n as NodeId)
            .filter(|&v| eccs[v as usize] == best)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::cycle(6)));
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter(&generators::path(7)), Some(6));
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::star(9)), Some(2));
        assert_eq!(diameter(&Graph::new(1)), Some(0));
        assert_eq!(diameter(&Graph::new(0)), None);
        let mut g = Graph::new(2);
        assert_eq!(diameter(&g), None, "disconnected");
        g.add_edge(0, 1).unwrap();
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn histogram() {
        let g = generators::star(5); // center degree 4, leaves degree 1
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn tree_detection() {
        assert!(is_tree(&generators::path(5)));
        assert!(is_tree(&generators::star(6)));
        assert!(is_tree(&generators::balanced_tree(9, 2)));
        assert!(!is_tree(&generators::cycle(4)));
        let mut forest = Graph::new(4);
        forest.add_edge(0, 1).unwrap();
        forest.add_edge(2, 3).unwrap();
        assert!(
            !is_tree(&forest),
            "disconnected with n-1... this has n-2 edges"
        );
        assert!(is_tree(&Graph::new(1)));
    }

    #[test]
    fn center_of_known_shapes() {
        assert_eq!(center(&generators::path(5)), Some(vec![2]));
        assert_eq!(center(&generators::path(4)), Some(vec![1, 2]));
        assert_eq!(center(&generators::star(7)), Some(vec![0]));
        assert_eq!(center(&generators::cycle(4)), Some(vec![0, 1, 2, 3]));
        assert_eq!(center(&Graph::new(0)), None);
        let mut disc = Graph::new(2);
        assert_eq!(center(&disc), None);
        disc.add_edge(0, 1).unwrap();
        assert_eq!(center(&disc), Some(vec![0, 1]));
    }

    #[test]
    fn g_m_leader_is_the_path_center() {
        for m in [2usize, 3, 5] {
            let config = crate::families::g_m(m);
            assert_eq!(
                center(config.graph()),
                Some(vec![crate::families::g_m_center(m)]),
                "m={m}"
            );
        }
    }
}
