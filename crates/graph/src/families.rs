//! The configuration families of the paper's Section 4.
//!
//! * [`g_m`] (Proposition 4.1): linear configurations with span 1 whose
//!   every dedicated leader-election algorithm needs `Ω(n)` rounds.
//! * [`h_m`] (Lemma 4.2): feasible 4-node paths needing at least `m` rounds
//!   — the `Ω(σ)` lower bound and the backbone of Proposition 4.4 (no
//!   universal algorithm).
//! * [`s_m`] (Proposition 4.5): infeasible 4-node paths indistinguishable
//!   from `h_m` before round `m`, killing distributed feasibility decision.
//!
//! Node layouts match the paper exactly so traces can be read against it.

use crate::config::{Configuration, Tag};
use crate::generators::path;
use crate::graph::NodeId;

/// Proposition 4.1's family `G_m` (requires `m ≥ 2`): a path of
/// `n = 4m + 1` nodes, listed left to right as
/// `a_1 … a_m  b_1 … b_{2m+1}  c_m … c_1`, where every `a_i` and `c_i` has
/// tag 0 and every `b_i` has tag 1.
///
/// The configuration is feasible (the centre `b_{m+1}` ends up alone in its
/// class after `m` iterations of `Classifier`), yet any dedicated algorithm
/// needs `Ω(n)` rounds: for every round `t < m − 1` the histories of
/// `b_m, b_{m+1}, b_{m+2}` coincide.
pub fn g_m(m: usize) -> Configuration {
    assert!(m >= 2, "G_m requires m >= 2, got {m}");
    let n = 4 * m + 1;
    let mut tags = vec![0 as Tag; n];
    tags[m..=3 * m].fill(1);
    Configuration::new(path(n), tags).expect("path is connected")
}

/// Index of the centre node `b_{m+1}` of [`g_m`] — the unique electable
/// leader.
pub fn g_m_center(m: usize) -> NodeId {
    (2 * m) as NodeId
}

/// Lemma 4.2's family `H_m` (requires `m ≥ 1`): the 4-node path
/// `a ‒ b ‒ c ‒ d` with tags `t_a = m`, `t_b = t_c = 0`, `t_d = m + 1`.
///
/// Every `H_m` is feasible (all four nodes split into singleton classes
/// after one `Classifier` iteration), and every leader-election algorithm
/// for it needs at least `m` rounds.
pub fn h_m(m: Tag) -> Configuration {
    assert!(m >= 1, "H_m requires m >= 1");
    Configuration::new(path(4), vec![m, 0, 0, m + 1]).expect("path is connected")
}

/// Proposition 4.5's family `S_m` (requires `m ≥ 1`): the 4-node path
/// `a ‒ b ‒ c ‒ d` with tags `t_a = t_d = m`, `t_b = t_c = 0`.
///
/// Every `S_m` is **infeasible** (the partition stabilizes at two 2-node
/// classes), yet if the first transmission of the tag-0 nodes under some
/// algorithm happens in round `t`, then every node's history on `S_{t+1}`
/// equals its counterpart's on `H_{t+1}` — so no distributed algorithm can
/// decide feasibility.
pub fn s_m(m: Tag) -> Configuration {
    assert!(m >= 1, "S_m requires m >= 1");
    Configuration::new(path(4), vec![m, 0, 0, m]).expect("path is connected")
}

/// Names for the four nodes of [`h_m`]/[`s_m`] in paper order.
pub const FOUR_NODE_NAMES: [&str; 4] = ["a", "b", "c", "d"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_m_layout_matches_paper() {
        let c = g_m(2); // n = 9: a1 a2 b1..b5 c2 c1
        assert_eq!(c.size(), 9);
        assert_eq!(c.tags(), &[0, 0, 1, 1, 1, 1, 1, 0, 0]);
        assert_eq!(c.span(), 1);
        assert_eq!(g_m_center(2), 4);
        // centre is the middle of the b-run
        assert_eq!(c.tag(g_m_center(2)), 1);
    }

    #[test]
    fn g_m_sizes() {
        for m in 2..8 {
            let c = g_m(m);
            assert_eq!(c.size(), 4 * m + 1);
            assert_eq!(c.span(), 1);
            assert_eq!(c.tag(g_m_center(m)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "m >= 2")]
    fn g_m_rejects_small_m() {
        let _ = g_m(1);
    }

    #[test]
    fn h_m_layout() {
        let c = h_m(5);
        assert_eq!(c.size(), 4);
        assert_eq!(c.tags(), &[5, 0, 0, 6]);
        assert_eq!(c.span(), 6);
    }

    #[test]
    fn s_m_layout() {
        let c = s_m(5);
        assert_eq!(c.tags(), &[5, 0, 0, 5]);
        assert_eq!(c.span(), 5);
        // S_m is mirror-symmetric: reversing the path maps tags onto
        // themselves — the symmetry that kills feasibility.
        let mirrored = c.relabel(&[3, 2, 1, 0]);
        assert_eq!(mirrored.tags(), c.tags());
        assert_eq!(mirrored.graph().edges(), c.graph().edges());
    }

    #[test]
    fn h_m_breaks_mirror_symmetry() {
        let c = h_m(5);
        let mirrored = c.relabel(&[3, 2, 1, 0]);
        assert_ne!(mirrored.tags(), c.tags());
    }
}
