//! Graph and configuration substrate for anonymous radio networks.
//!
//! The SPAA 2020 paper models a radio network as a *configuration*: a simple
//! undirected connected graph whose nodes carry non-negative integer
//! **wake-up tags**. This crate provides everything upstream crates need to
//! build, inspect, and serialize such configurations:
//!
//! * [`Graph`] — a mutable simple-graph builder with adjacency lists, and
//!   [`Csr`] — the compressed-sparse-row form used by the simulator's hot
//!   loop.
//! * [`generators`] — deterministic constructors for paths, cycles, trees,
//!   grids, hypercubes, complete/bipartite graphs, and seeded random
//!   families (connected G(n,p), random trees, caterpillars).
//! * [`family`] — the [`FamilySpec`] scenario grammar: every generator
//!   reachable by a parseable name (`grid:16x4`, `hypercube:6`, `gnp:0.05`)
//!   for campaign axes and CLIs.
//! * [`Configuration`] — graph + tags, with span/normalization and
//!   validation, plus [`tags`] strategies for assigning tags (including the
//!   named [`TagStrategy`] axis: uniform/clustered/extremes/arithmetic).
//! * [`families`] — the configuration families the paper's Section 4 builds
//!   its lower bounds and impossibility results from (`G_m`, `H_m`, `S_m`).
//! * [`io`] — a line-oriented text format (round-trippable) and DOT export.
//! * [`algo`] — BFS, connectivity, eccentricity/diameter, degree statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod config;
pub mod csr;
pub mod enumerate;
pub mod families;
pub mod family;
pub mod generators;
pub mod graph;
pub mod io;
pub mod tags;

pub use config::Configuration;
pub use csr::Csr;
pub use family::{FamilyError, FamilySpec};
pub use graph::{Graph, NodeId};
pub use tags::TagStrategy;

#[cfg(test)]
mod proptests;
