//! The `FamilySpec` scenario grammar: every graph generator in
//! [`generators`](crate::generators), reachable by name.
//!
//! The paper's round complexity is driven jointly by topology and by the
//! label span, so campaign grids need the whole generator zoo — not a
//! hard-coded handful of shapes. A [`FamilySpec`] is a small parseable
//! value (`grid:16x4`, `torus:8x8`, `hypercube:6`, `barbell:20+10`,
//! `gnp:0.05`, …) that names one graph family together with its shape
//! parameters, parses from the CLI (`--families grid:16x4,torus:8x8`),
//! round-trips through [`Display`](std::fmt::Display), and builds
//! deterministic or seed-derived graphs through [`FamilySpec::build`].
//!
//! ## Grammar
//!
//! | spec | graph | nodes |
//! |------|-------|-------|
//! | `path` | path `P_n` | size axis |
//! | `cycle` | cycle `C_n` (`n ≥ 3`) | size axis |
//! | `star` | star `K_{1,n-1}` | size axis |
//! | `complete` | complete `K_n` | size axis |
//! | `wheel` | hub + rim cycle (`n ≥ 4`) | size axis |
//! | `ladder` | two rails + rungs (`n` even) | size axis |
//! | `binary-tree` / `tree:K` | balanced `K`-ary tree | size axis |
//! | `random-tree` | uniform attachment tree | size axis |
//! | `gnp` / `gnp:P` | connected `G(n, p)`; bare `gnp` uses `p = 8/n` | size axis |
//! | `random-connected:E` | tree + `E` random extra edges | size axis |
//! | `grid:RxC` | `R × C` grid | `R·C` |
//! | `torus:RxC` | `R × C` torus (`R, C ≥ 3`) | `R·C` |
//! | `hypercube:D` | `D`-dimensional hypercube | `2^D` |
//! | `caterpillar:SxL` | spine `S`, `L` legs per spine node | `S·(1+L)` |
//! | `random-caterpillar:S+L` | spine `S`, `L` random leaves | `S+L` |
//! | `spider:LxK` | `L` legs of length `K` glued at a centre | `1+L·K` |
//! | `barbell:K+B` | two `K_K` cliques, `B`-node bridge | `2K+B` |
//! | `lollipop:K+T` | `K_K` clique + `T`-node tail | `K+T` |
//! | `double-star:A+B` | two adjacent hubs, `A`/`B` leaves | `2+A+B` |
//! | `bipartite:AxB` | complete bipartite `K_{A,B}` | `A+B` |
//!
//! Families in the upper block are **scalable**: the node count comes from
//! the campaign size axis and [`FamilySpec::node_count`] returns `None`.
//! Families in the lower block are **pinned**: the spec itself determines
//! the node count, and building at any other size is an error — never a
//! silent clamp, so a grid cell's label can't disagree with its graph.

use std::fmt;

use radio_util::rng::{derive, rng_from};

use crate::csr::Csr;
use crate::generators;
use crate::graph::Graph;

/// Errors from [`FamilySpec::build`] / [`FamilySpec::check_size`]: the
/// requested node count is not realizable by the family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyError {
    /// The family spec that rejected the size (its canonical rendering).
    pub spec: String,
    /// The requested node count.
    pub n: usize,
    /// Why the size is not realizable.
    pub reason: String,
}

impl fmt::Display for FamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "family `{}` cannot be built on n={} nodes: {}",
            self.spec, self.n, self.reason
        )
    }
}

impl std::error::Error for FamilyError {}

/// One parsed scenario-family spec: a generator plus its shape parameters.
///
/// `FamilySpec` is `Copy` and hash/order-free so it can sit inside campaign
/// cell keys; the grammar is documented at the [module level](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilySpec {
    /// Path `P_n` (scalable).
    Path,
    /// Cycle `C_n`, `n ≥ 3` (scalable).
    Cycle,
    /// Star `K_{1,n-1}` (scalable).
    Star,
    /// Complete graph `K_n` (scalable).
    Complete,
    /// Wheel: hub + rim cycle, `n ≥ 4` (scalable).
    Wheel,
    /// Ladder: two rails of `n/2` nodes + rungs, `n` even (scalable).
    Ladder,
    /// Balanced `arity`-ary tree (scalable). `arity = 2` renders as the
    /// legacy name `binary-tree`.
    Tree {
        /// Branching factor (`≥ 1`).
        arity: u32,
    },
    /// Uniform random attachment tree (scalable, seed-derived).
    RandomTree,
    /// Connected `G(n, p)` (scalable, seed-derived). `ppm` is the edge
    /// probability in parts per million; `None` means the legacy
    /// size-adaptive `p = min(8/n, 1)`.
    Gnp {
        /// Edge probability in parts per million (`None` = `8/n`).
        ppm: Option<u32>,
    },
    /// Random tree plus exactly `extra` additional edges (scalable,
    /// seed-derived).
    RandomConnected {
        /// Extra edges beyond the spanning tree.
        extra: u32,
    },
    /// `rows × cols` grid (pinned to `rows·cols` nodes).
    Grid {
        /// Grid rows (`≥ 1`).
        rows: u32,
        /// Grid columns (`≥ 1`).
        cols: u32,
    },
    /// `rows × cols` torus (pinned; `rows, cols ≥ 3`).
    Torus {
        /// Torus rows.
        rows: u32,
        /// Torus columns.
        cols: u32,
    },
    /// `dim`-dimensional hypercube (pinned to `2^dim` nodes; `1 ≤ dim ≤ 20`).
    Hypercube {
        /// Hypercube dimension.
        dim: u32,
    },
    /// Caterpillar: spine path with `legs` pendant leaves per spine node
    /// (pinned to `spine·(1+legs)` nodes).
    Caterpillar {
        /// Spine length (`≥ 1`).
        spine: u32,
        /// Leaves per spine node.
        legs: u32,
    },
    /// Random caterpillar: spine path plus `leaves` leaves on uniformly
    /// chosen spine nodes (pinned to `spine+leaves` nodes, seed-derived).
    RandomCaterpillar {
        /// Spine length (`≥ 1`).
        spine: u32,
        /// Total pendant leaves.
        leaves: u32,
    },
    /// Spider: `legs` paths of length `len` glued at a centre (pinned to
    /// `1+legs·len` nodes).
    Spider {
        /// Number of legs.
        legs: u32,
        /// Nodes per leg.
        len: u32,
    },
    /// Barbell: two `K_clique` cliques joined by a `bridge`-node path
    /// (pinned to `2·clique+bridge` nodes; `clique ≥ 1`).
    Barbell {
        /// Clique size.
        clique: u32,
        /// Intermediate bridge nodes.
        bridge: u32,
    },
    /// Lollipop: `K_clique` clique with a pendant `tail`-node path (pinned
    /// to `clique+tail` nodes; `clique ≥ 1`).
    Lollipop {
        /// Clique size.
        clique: u32,
        /// Tail length.
        tail: u32,
    },
    /// Double star: two adjacent hubs carrying `left`/`right` leaves
    /// (pinned to `2+left+right` nodes).
    DoubleStar {
        /// Leaves on the first hub.
        left: u32,
        /// Leaves on the second hub.
        right: u32,
    },
    /// Complete bipartite `K_{left,right}` (pinned to `left+right` nodes;
    /// both sides `≥ 1`).
    Bipartite {
        /// Left side size.
        left: u32,
        /// Right side size.
        right: u32,
    },
}

impl FamilySpec {
    /// The node count the spec pins, or `None` for scalable families whose
    /// size comes from a size axis.
    pub fn node_count(&self) -> Option<usize> {
        match *self {
            FamilySpec::Grid { rows, cols } | FamilySpec::Torus { rows, cols } => {
                Some(rows as usize * cols as usize)
            }
            FamilySpec::Hypercube { dim } => Some(1usize << dim),
            FamilySpec::Caterpillar { spine, legs } => Some(spine as usize * (1 + legs as usize)),
            FamilySpec::RandomCaterpillar { spine, leaves } => {
                Some(spine as usize + leaves as usize)
            }
            FamilySpec::Spider { legs, len } => Some(1 + legs as usize * len as usize),
            FamilySpec::Barbell { clique, bridge } => Some(2 * clique as usize + bridge as usize),
            FamilySpec::Lollipop { clique, tail } => Some(clique as usize + tail as usize),
            FamilySpec::DoubleStar { left, right } => Some(2 + left as usize + right as usize),
            FamilySpec::Bipartite { left, right } => Some(left as usize + right as usize),
            _ => None,
        }
    }

    /// The sizes this family contributes to a grid crossed with `axis`:
    /// pinned families contribute their own node count, scalable ones the
    /// axis verbatim.
    pub fn sizes_for(&self, axis: &[usize]) -> Vec<usize> {
        match self.node_count() {
            Some(n) => vec![n],
            None => axis.to_vec(),
        }
    }

    /// Checks that the family is buildable on exactly `n` nodes — `Err`,
    /// never a clamp, when it isn't.
    pub fn check_size(&self, n: usize) -> Result<(), FamilyError> {
        let fail = |reason: String| {
            Err(FamilyError {
                spec: self.to_string(),
                n,
                reason,
            })
        };
        if let Some(pinned) = self.node_count() {
            if n != pinned {
                return fail(format!("the spec pins the node count to {pinned}"));
            }
            return Ok(());
        }
        match *self {
            FamilySpec::Cycle if n < 3 => fail("no cycle has fewer than 3 nodes".to_string()),
            FamilySpec::Wheel if n < 4 => fail("a wheel needs a hub and a 3-cycle rim".to_string()),
            FamilySpec::Ladder if n < 2 || !n.is_multiple_of(2) => {
                fail("a ladder has two equal rails, so n must be even and ≥ 2".to_string())
            }
            FamilySpec::RandomConnected { extra } => {
                let max_extra = n * n.saturating_sub(1) / 2 - n.saturating_sub(1);
                if n == 0 {
                    fail("a graph needs at least one node".to_string())
                } else if extra as usize > max_extra {
                    fail(format!(
                        "only {max_extra} non-tree edge slots exist at this size"
                    ))
                } else {
                    Ok(())
                }
            }
            _ if n == 0 => fail("a graph needs at least one node".to_string()),
            _ => Ok(()),
        }
    }

    /// Builds the family member on exactly `n` nodes. Deterministic
    /// families ignore the seed; seed-derived ones use the same stream
    /// labels the legacy campaign axis used (`rtree`, `gnp`, …), so
    /// pre-existing draws are unchanged.
    pub fn build(&self, n: usize, seed: u64) -> Result<Graph, FamilyError> {
        self.check_size(n)?;
        Ok(match *self {
            FamilySpec::Path => generators::path(n),
            FamilySpec::Cycle => generators::cycle(n),
            FamilySpec::Star => generators::star(n),
            FamilySpec::Complete => generators::complete(n),
            FamilySpec::Wheel => generators::wheel(n),
            FamilySpec::Ladder => generators::ladder(n / 2),
            FamilySpec::Tree { arity } => generators::balanced_tree(n, arity as usize),
            FamilySpec::RandomTree => {
                generators::random_tree(n, &mut rng_from(derive(seed, "rtree")))
            }
            FamilySpec::Gnp { ppm } => {
                let p = match ppm {
                    Some(ppm) => f64::from(ppm) / 1e6,
                    None => (8.0 / n as f64).min(1.0),
                };
                generators::gnp_connected(n, p, &mut rng_from(derive(seed, "gnp")))
            }
            FamilySpec::RandomConnected { extra } => generators::random_connected(
                n,
                extra as usize,
                &mut rng_from(derive(seed, "rconn")),
            ),
            FamilySpec::Grid { rows, cols } => generators::grid(rows as usize, cols as usize),
            FamilySpec::Torus { rows, cols } => generators::torus(rows as usize, cols as usize),
            FamilySpec::Hypercube { dim } => generators::hypercube(dim),
            FamilySpec::Caterpillar { spine, legs } => {
                generators::caterpillar(spine as usize, legs as usize)
            }
            FamilySpec::RandomCaterpillar { spine, leaves } => generators::random_caterpillar(
                spine as usize,
                leaves as usize,
                &mut rng_from(derive(seed, "rcat")),
            ),
            FamilySpec::Spider { legs, len } => generators::spider(legs as usize, len as usize),
            FamilySpec::Barbell { clique, bridge } => {
                generators::barbell(clique as usize, bridge as usize)
            }
            FamilySpec::Lollipop { clique, tail } => {
                generators::lollipop(clique as usize, tail as usize)
            }
            FamilySpec::DoubleStar { left, right } => {
                generators::double_star(left as usize, right as usize)
            }
            FamilySpec::Bipartite { left, right } => {
                generators::complete_bipartite(left as usize, right as usize)
            }
        })
    }

    /// Builds the family member on exactly `n` nodes **directly in CSR
    /// form** — the million-node scale path. No intermediate adjacency-list
    /// [`Graph`] is materialized: deterministic families stream their edges
    /// into a degree-pre-counted [`CsrBuilder`](crate::csr::CsrBuilder),
    /// and seed-derived families run the identical positional RNG stream
    /// twice (count, then fill), so the result is byte-identical to
    /// `build(n, seed)` followed by [`Csr::from_graph`].
    pub fn build_csr(&self, n: usize, seed: u64) -> Result<Csr, FamilyError> {
        use crate::generators::stream;
        self.check_size(n)?;
        Ok(match *self {
            FamilySpec::Path => stream::path_csr(n),
            FamilySpec::Cycle => stream::cycle_csr(n),
            FamilySpec::Star => stream::star_csr(n),
            FamilySpec::Complete => stream::complete_csr(n),
            FamilySpec::Wheel => stream::wheel_csr(n),
            FamilySpec::Ladder => stream::ladder_csr(n / 2),
            FamilySpec::Tree { arity } => stream::balanced_tree_csr(n, arity as usize),
            FamilySpec::RandomTree => stream::random_tree_csr(n, derive(seed, "rtree")),
            FamilySpec::Gnp { ppm } => {
                let p = match ppm {
                    Some(ppm) => f64::from(ppm) / 1e6,
                    None => (8.0 / n as f64).min(1.0),
                };
                stream::gnp_connected_csr(n, p, derive(seed, "gnp"))
            }
            FamilySpec::RandomConnected { extra } => {
                stream::random_connected_csr(n, extra as usize, derive(seed, "rconn"))
            }
            FamilySpec::Grid { rows, cols } => stream::grid_csr(rows as usize, cols as usize),
            FamilySpec::Torus { rows, cols } => stream::torus_csr(rows as usize, cols as usize),
            FamilySpec::Hypercube { dim } => stream::hypercube_csr(dim),
            FamilySpec::Caterpillar { spine, legs } => {
                stream::caterpillar_csr(spine as usize, legs as usize)
            }
            FamilySpec::RandomCaterpillar { spine, leaves } => stream::random_caterpillar_csr(
                spine as usize,
                leaves as usize,
                derive(seed, "rcat"),
            ),
            FamilySpec::Spider { legs, len } => stream::spider_csr(legs as usize, len as usize),
            FamilySpec::Barbell { clique, bridge } => {
                stream::barbell_csr(clique as usize, bridge as usize)
            }
            FamilySpec::Lollipop { clique, tail } => {
                stream::lollipop_csr(clique as usize, tail as usize)
            }
            FamilySpec::DoubleStar { left, right } => {
                stream::double_star_csr(left as usize, right as usize)
            }
            FamilySpec::Bipartite { left, right } => {
                stream::complete_bipartite_csr(left as usize, right as usize)
            }
        })
    }

    /// Edge count of the family member on `n` nodes, as a `u128` safe for
    /// overflow arithmetic. Exact for every family except [`FamilySpec::Gnp`]
    /// with `0 < p < 1`, where it is the *expected* count (the backbone tree
    /// plus `p` times the remaining pairs) — campaign validation uses this
    /// to reject grids whose CSR `targets` could not fit `u32` offsets.
    pub fn edge_count_hint(&self, n: usize) -> u128 {
        let n = n as u128;
        let tree = n.saturating_sub(1);
        let pairs = n * n.saturating_sub(1) / 2;
        match *self {
            FamilySpec::Path | FamilySpec::Star | FamilySpec::Tree { .. } => tree,
            FamilySpec::RandomTree => tree,
            FamilySpec::Cycle => n,
            FamilySpec::Complete => pairs,
            FamilySpec::Wheel => 2 * tree,
            FamilySpec::Ladder => 3 * (n / 2) - 2,
            FamilySpec::Gnp { ppm } => {
                let p = match ppm {
                    Some(ppm) => f64::from(ppm) / 1e6,
                    None => (8.0 / n.max(1) as f64).min(1.0),
                };
                tree + ((pairs - tree) as f64 * p).ceil() as u128
            }
            FamilySpec::RandomConnected { extra } => tree + extra as u128,
            FamilySpec::Grid { rows, cols } => {
                let (r, c) = (rows as u128, cols as u128);
                r * (c - 1) + c * (r - 1)
            }
            FamilySpec::Torus { rows, cols } => 2 * rows as u128 * cols as u128,
            FamilySpec::Hypercube { dim } => dim as u128 * (1u128 << (dim - 1)),
            FamilySpec::Caterpillar { .. }
            | FamilySpec::RandomCaterpillar { .. }
            | FamilySpec::Spider { .. }
            | FamilySpec::DoubleStar { .. } => tree,
            FamilySpec::Barbell { clique, bridge } => {
                let k = clique as u128;
                k * (k - 1) + bridge as u128 + 1
            }
            FamilySpec::Lollipop { clique, tail } => {
                let k = clique as u128;
                k * (k - 1) / 2 + tail as u128
            }
            FamilySpec::Bipartite { left, right } => left as u128 * right as u128,
        }
    }

    /// The registered base names, one per family, in grammar-table order —
    /// what CLI error messages and the CI matrix smoke enumerate.
    pub const FAMILY_NAMES: [&'static str; 20] = [
        "path",
        "cycle",
        "star",
        "complete",
        "wheel",
        "ladder",
        "binary-tree",
        "random-tree",
        "gnp",
        "random-connected",
        "grid",
        "torus",
        "hypercube",
        "caterpillar",
        "random-caterpillar",
        "spider",
        "barbell",
        "lollipop",
        "double-star",
        "bipartite",
    ];

    /// One small representative per registered family — the instance zoo
    /// the property tests, the cross-engine differential matrix, and the
    /// CI matrix smoke iterate. Every family name in
    /// [`FamilySpec::FAMILY_NAMES`] appears at least once; scalable
    /// entries build at [`FamilySpec::default_size`].
    pub fn zoo() -> Vec<FamilySpec> {
        vec![
            FamilySpec::Path,
            FamilySpec::Cycle,
            FamilySpec::Star,
            FamilySpec::Complete,
            FamilySpec::Wheel,
            FamilySpec::Ladder,
            FamilySpec::Tree { arity: 2 },
            FamilySpec::Tree { arity: 3 },
            FamilySpec::RandomTree,
            FamilySpec::Gnp { ppm: None },
            FamilySpec::Gnp { ppm: Some(200_000) },
            FamilySpec::RandomConnected { extra: 2 },
            FamilySpec::Grid { rows: 4, cols: 3 },
            FamilySpec::Torus { rows: 3, cols: 3 },
            FamilySpec::Hypercube { dim: 3 },
            FamilySpec::Caterpillar { spine: 4, legs: 2 },
            FamilySpec::RandomCaterpillar {
                spine: 4,
                leaves: 4,
            },
            FamilySpec::Spider { legs: 3, len: 2 },
            FamilySpec::Barbell {
                clique: 3,
                bridge: 2,
            },
            FamilySpec::Lollipop { clique: 4, tail: 3 },
            FamilySpec::DoubleStar { left: 3, right: 2 },
            FamilySpec::Bipartite { left: 2, right: 3 },
        ]
    }

    /// A valid node count for this spec: the pinned count, or 8 for
    /// scalable families (8 satisfies every scalable constraint: ≥ 3 for
    /// cycles, ≥ 4 for wheels, even for ladders).
    pub fn default_size(&self) -> usize {
        self.node_count().unwrap_or(8)
    }
}

/// Splits `grid:4x3`-style parameters on the given separator into two
/// `u32`s.
fn split_pair(params: &str, sep: char, spec: &str) -> Result<(u32, u32), String> {
    let (a, b) = params
        .split_once(sep)
        .ok_or_else(|| format!("`{spec}` expects two `{sep}`-separated numbers"))?;
    let parse = |s: &str| {
        s.parse::<u32>()
            .map_err(|_| format!("`{spec}`: `{s}` is not a number"))
    };
    Ok((parse(a)?, parse(b)?))
}

impl std::str::FromStr for FamilySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FamilySpec, String> {
        let (name, params) = match s.split_once(':') {
            Some((name, params)) => (name, Some(params)),
            None => (s, None),
        };
        let no_params = |spec: FamilySpec| match params {
            Some(p) => Err(format!("family `{name}` takes no parameter, got `{p}`")),
            None => Ok(spec),
        };
        let with_params = |what: &str| {
            params.ok_or_else(|| format!("family `{name}` needs a parameter: `{name}:{what}`"))
        };
        match name {
            "path" => no_params(FamilySpec::Path),
            "cycle" => no_params(FamilySpec::Cycle),
            "star" => no_params(FamilySpec::Star),
            "complete" => no_params(FamilySpec::Complete),
            "wheel" => no_params(FamilySpec::Wheel),
            "ladder" => no_params(FamilySpec::Ladder),
            "binary-tree" | "btree" => no_params(FamilySpec::Tree { arity: 2 }),
            "random-tree" | "rtree" => no_params(FamilySpec::RandomTree),
            "tree" => {
                let arity: u32 = with_params("K")?
                    .parse()
                    .map_err(|_| format!("`{s}`: arity must be a number"))?;
                if arity == 0 {
                    return Err(format!("`{s}`: tree arity must be ≥ 1"));
                }
                Ok(FamilySpec::Tree { arity })
            }
            "gnp" => match params {
                None => Ok(FamilySpec::Gnp { ppm: None }),
                Some(p) => {
                    let p: f64 = p
                        .parse()
                        .map_err(|_| format!("`{s}`: edge probability must be a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("`{s}`: edge probability must be in [0, 1]"));
                    }
                    Ok(FamilySpec::Gnp {
                        ppm: Some((p * 1e6).round() as u32),
                    })
                }
            },
            "random-connected" | "rconn" => {
                let extra: u32 = with_params("E")?
                    .parse()
                    .map_err(|_| format!("`{s}`: extra edge count must be a number"))?;
                Ok(FamilySpec::RandomConnected { extra })
            }
            "grid" => {
                let (rows, cols) = split_pair(with_params("RxC")?, 'x', s)?;
                if rows == 0 || cols == 0 {
                    return Err(format!("`{s}`: grid dimensions must be ≥ 1"));
                }
                Ok(FamilySpec::Grid { rows, cols })
            }
            "torus" => {
                let (rows, cols) = split_pair(with_params("RxC")?, 'x', s)?;
                if rows < 3 || cols < 3 {
                    return Err(format!("`{s}`: torus dimensions must be ≥ 3"));
                }
                Ok(FamilySpec::Torus { rows, cols })
            }
            "hypercube" => {
                let dim: u32 = with_params("D")?
                    .parse()
                    .map_err(|_| format!("`{s}`: dimension must be a number"))?;
                if !(1..=20).contains(&dim) {
                    return Err(format!("`{s}`: dimension must be in 1..=20"));
                }
                Ok(FamilySpec::Hypercube { dim })
            }
            "caterpillar" => {
                let (spine, legs) = split_pair(with_params("SxL")?, 'x', s)?;
                if spine == 0 {
                    return Err(format!("`{s}`: the spine must be non-empty"));
                }
                Ok(FamilySpec::Caterpillar { spine, legs })
            }
            "random-caterpillar" | "rcaterpillar" => {
                let (spine, leaves) = split_pair(with_params("S+L")?, '+', s)?;
                if spine == 0 {
                    return Err(format!("`{s}`: the spine must be non-empty"));
                }
                Ok(FamilySpec::RandomCaterpillar { spine, leaves })
            }
            "spider" => {
                let (legs, len) = split_pair(with_params("LxK")?, 'x', s)?;
                Ok(FamilySpec::Spider { legs, len })
            }
            "barbell" => {
                let (clique, bridge) = split_pair(with_params("K+B")?, '+', s)?;
                if clique == 0 {
                    return Err(format!("`{s}`: clique size must be ≥ 1"));
                }
                Ok(FamilySpec::Barbell { clique, bridge })
            }
            "lollipop" => {
                let (clique, tail) = split_pair(with_params("K+T")?, '+', s)?;
                if clique == 0 {
                    return Err(format!("`{s}`: clique size must be ≥ 1"));
                }
                Ok(FamilySpec::Lollipop { clique, tail })
            }
            "double-star" => {
                let (left, right) = split_pair(with_params("A+B")?, '+', s)?;
                Ok(FamilySpec::DoubleStar { left, right })
            }
            "bipartite" | "complete-bipartite" => {
                let (left, right) = split_pair(with_params("AxB")?, 'x', s)?;
                if left == 0 || right == 0 {
                    return Err(format!(
                        "`{s}`: both bipartite sides must be non-empty (the graph \
                         must be connected)"
                    ));
                }
                Ok(FamilySpec::Bipartite { left, right })
            }
            other => Err(format!(
                "unknown graph family `{other}` (registered: {})",
                FamilySpec::FAMILY_NAMES.join(", ")
            )),
        }
    }
}

impl fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FamilySpec::Path => write!(f, "path"),
            FamilySpec::Cycle => write!(f, "cycle"),
            FamilySpec::Star => write!(f, "star"),
            FamilySpec::Complete => write!(f, "complete"),
            FamilySpec::Wheel => write!(f, "wheel"),
            FamilySpec::Ladder => write!(f, "ladder"),
            // arity 2 keeps the legacy campaign-axis name so existing JSONL
            // rows and seed-derivation streams are unchanged
            FamilySpec::Tree { arity: 2 } => write!(f, "binary-tree"),
            FamilySpec::Tree { arity } => write!(f, "tree:{arity}"),
            FamilySpec::RandomTree => write!(f, "random-tree"),
            FamilySpec::Gnp { ppm: None } => write!(f, "gnp"),
            FamilySpec::Gnp { ppm: Some(ppm) } => write!(f, "gnp:{}", f64::from(ppm) / 1e6),
            FamilySpec::RandomConnected { extra } => write!(f, "random-connected:{extra}"),
            FamilySpec::Grid { rows, cols } => write!(f, "grid:{rows}x{cols}"),
            FamilySpec::Torus { rows, cols } => write!(f, "torus:{rows}x{cols}"),
            FamilySpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            FamilySpec::Caterpillar { spine, legs } => write!(f, "caterpillar:{spine}x{legs}"),
            FamilySpec::RandomCaterpillar { spine, leaves } => {
                write!(f, "random-caterpillar:{spine}+{leaves}")
            }
            FamilySpec::Spider { legs, len } => write!(f, "spider:{legs}x{len}"),
            FamilySpec::Barbell { clique, bridge } => write!(f, "barbell:{clique}+{bridge}"),
            FamilySpec::Lollipop { clique, tail } => write!(f, "lollipop:{clique}+{tail}"),
            FamilySpec::DoubleStar { left, right } => write!(f, "double-star:{left}+{right}"),
            FamilySpec::Bipartite { left, right } => write!(f, "bipartite:{left}x{right}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;

    #[test]
    fn zoo_covers_every_registered_name() {
        let zoo = FamilySpec::zoo();
        for name in FamilySpec::FAMILY_NAMES {
            assert!(
                zoo.iter().any(|s| {
                    let rendered = s.to_string();
                    rendered == name || rendered.starts_with(&format!("{name}:"))
                }),
                "no zoo instance for registered family `{name}`"
            );
        }
    }

    #[test]
    fn zoo_builds_connected_graphs_of_the_declared_size() {
        for spec in FamilySpec::zoo() {
            let n = spec.default_size();
            let g = spec.build(n, 42).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(g.node_count(), n, "{spec}");
            assert!(is_connected(&g), "{spec}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in FamilySpec::zoo() {
            let rendered = spec.to_string();
            let parsed: FamilySpec = rendered.parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed, spec, "{rendered}");
        }
    }

    #[test]
    fn issue_grammar_examples_parse() {
        assert_eq!(
            "grid:16x4".parse::<FamilySpec>().unwrap(),
            FamilySpec::Grid { rows: 16, cols: 4 }
        );
        assert_eq!(
            "torus:8x8".parse::<FamilySpec>().unwrap(),
            FamilySpec::Torus { rows: 8, cols: 8 }
        );
        assert_eq!(
            "hypercube:6".parse::<FamilySpec>().unwrap(),
            FamilySpec::Hypercube { dim: 6 }
        );
        assert_eq!(
            "caterpillar:32x3".parse::<FamilySpec>().unwrap(),
            FamilySpec::Caterpillar { spine: 32, legs: 3 }
        );
        assert_eq!(
            "barbell:20+10".parse::<FamilySpec>().unwrap(),
            FamilySpec::Barbell {
                clique: 20,
                bridge: 10
            }
        );
        let gnp = "gnp:0.05".parse::<FamilySpec>().unwrap();
        assert_eq!(gnp, FamilySpec::Gnp { ppm: Some(50_000) });
        assert_eq!(gnp.to_string(), "gnp:0.05");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "kagome-lattice",
            "grid",
            "grid:4",
            "grid:0x4",
            "torus:2x5",
            "hypercube:0",
            "hypercube:64",
            "gnp:1.5",
            "gnp:x",
            "tree:0",
            "bipartite:0x4",
            "path:9",
            "barbell:0+3",
            "caterpillar:0x2",
        ] {
            assert!(bad.parse::<FamilySpec>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn pinned_sizes_reject_mismatches_instead_of_clamping() {
        let grid = FamilySpec::Grid { rows: 4, cols: 3 };
        assert_eq!(grid.node_count(), Some(12));
        assert!(grid.build(12, 0).is_ok());
        let err = grid.build(11, 0).unwrap_err();
        assert!(err.reason.contains("pins the node count"), "{err}");
        assert_eq!(grid.sizes_for(&[5, 11]), vec![12]);
        assert_eq!(FamilySpec::Path.sizes_for(&[5, 11]), vec![5, 11]);
    }

    #[test]
    fn scalable_constraints_are_errors_not_clamps() {
        assert!(FamilySpec::Cycle.build(2, 0).is_err());
        assert!(FamilySpec::Cycle.build(3, 0).is_ok());
        assert!(FamilySpec::Wheel.build(3, 0).is_err());
        assert!(FamilySpec::Ladder.build(7, 0).is_err(), "odd ladder");
        assert!(FamilySpec::Ladder.build(8, 0).is_ok());
        assert!(FamilySpec::Path.build(0, 0).is_err());
        // random-connected: the extra-edge budget must fit the size
        let rc = FamilySpec::RandomConnected { extra: 4 };
        assert!(rc.build(3, 0).is_err(), "3 nodes have 1 non-tree slot");
        assert!(rc.build(6, 0).is_ok());
    }

    #[test]
    fn legacy_streams_are_preserved() {
        // FamilySpec must draw exactly the graphs the old FamilyKind axis
        // drew, so pre-existing campaign rows stay reproducible.
        let a = FamilySpec::RandomTree.build(9, 77).unwrap();
        let b = generators::random_tree(9, &mut rng_from(derive(77, "rtree")));
        assert_eq!(a.edges(), b.edges());
        let a = FamilySpec::Gnp { ppm: None }.build(9, 77).unwrap();
        let b = generators::gnp_connected(9, 8.0 / 9.0, &mut rng_from(derive(77, "gnp")));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn build_csr_is_byte_identical_to_graph_route() {
        for spec in FamilySpec::zoo() {
            let n = spec.default_size();
            for seed in [0u64, 42, 0xFEED] {
                let direct = spec.build_csr(n, seed).unwrap_or_else(|e| panic!("{e}"));
                let via_graph = Csr::from_graph(&spec.build(n, seed).unwrap());
                assert_eq!(direct, via_graph, "{spec} seed={seed}");
            }
        }
    }

    #[test]
    fn build_csr_rejects_the_same_sizes_as_build() {
        assert_eq!(
            FamilySpec::Cycle.build_csr(2, 0).unwrap_err(),
            FamilySpec::Cycle.build(2, 0).unwrap_err()
        );
        assert!(FamilySpec::Ladder.build_csr(7, 0).is_err());
        let grid = FamilySpec::Grid { rows: 4, cols: 3 };
        assert!(grid.build_csr(11, 0).is_err());
    }

    #[test]
    fn edge_count_hint_is_exact_for_non_gnp_families() {
        for spec in FamilySpec::zoo() {
            if matches!(spec, FamilySpec::Gnp { .. }) {
                continue;
            }
            let n = spec.default_size();
            let g = spec.build(n, 3).unwrap();
            assert_eq!(
                spec.edge_count_hint(n),
                g.edge_count() as u128,
                "{spec} at n={n}"
            );
        }
    }

    #[test]
    fn fixed_p_gnp_spans_the_density_range() {
        let sparse = FamilySpec::Gnp { ppm: Some(0) }.build(10, 5).unwrap();
        assert_eq!(sparse.edge_count(), 9, "p=0 is a tree");
        let dense = FamilySpec::Gnp {
            ppm: Some(1_000_000),
        }
        .build(10, 5)
        .unwrap();
        assert_eq!(dense.edge_count(), 45, "p=1 is complete");
    }
}
