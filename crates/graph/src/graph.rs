//! Simple undirected graphs with adjacency-list storage.
//!
//! [`Graph`] is the mutable builder form: nodes are dense `u32` indices,
//! edges are undirected and deduplicated, self-loops are rejected (the paper
//! works with *simple* graphs). The simulator consumes the frozen
//! [`crate::Csr`] form instead.

use std::fmt;

use radio_util::FxHashSet;

/// Dense node index. The paper's `n` tops out in the low thousands for every
/// experiment, so 32 bits are ample and keep hot structures compact.
pub type NodeId = u32;

/// Error type for graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// Both endpoints of an edge were the same node.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} (graphs are simple)"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph under construction.
///
/// Edges are appended during building; neighbour lists keep insertion order
/// (use [`Graph::sorted_neighbors`] or freeze into a [`crate::Csr`] when a
/// canonical order matters). Equality is *semantic*: two graphs are equal
/// iff they have the same node count and edge set, regardless of the order
/// edges were inserted.
#[derive(Debug, Clone, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    m: usize,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.n == other.n && self.m == other.m && self.edges() == other.edges()
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Graph {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Creates a graph from an edge list. Duplicate edges are ignored.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Iterator over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Adds the undirected edge `{u, v}`. Returns `Ok(true)` if the edge was
    /// new, `Ok(false)` if it already existed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for &x in [u, v].iter() {
            if (x as usize) >= self.n {
                return Err(GraphError::NodeOutOfRange { node: x, n: self.n });
            }
        }
        if self.adj[u as usize].contains(&v) {
            return Ok(false);
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.m += 1;
        Ok(true)
    }

    /// Appends the undirected edge `{u, v}` without the duplicate scan.
    ///
    /// Reserved for deterministic generators whose construction provably
    /// never repeats an edge: `add_edge`'s O(deg) dedup scan makes dense
    /// builders like `complete(n)` cost O(n³) overall, which dominates
    /// per-rep configuration derivation in campaign grids. Bounds,
    /// self-loop, and no-duplicate are still checked in debug builds.
    #[inline]
    pub(crate) fn push_edge_unchecked(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u != v, "self-loop at {u}");
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        debug_assert!(!self.has_edge(u, v), "duplicate edge {u}-{v}");
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.m += 1;
    }

    /// Pre-sizes the neighbour list of `v` for `extra` further insertions.
    #[inline]
    pub(crate) fn reserve_neighbors(&mut self, v: NodeId, extra: usize) {
        self.adj[v as usize].reserve(extra);
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (u as usize) < self.n && self.adj[u as usize].contains(&v)
    }

    /// Neighbour list of `v` (unsorted order of insertion; use
    /// [`Graph::sorted_neighbors`] when order matters).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Sorted copy of the neighbour list of `v`.
    pub fn sorted_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut ns = self.adj[v as usize].clone();
        ns.sort_unstable();
        ns
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree Δ over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// All edges as `(min, max)` pairs, sorted lexicographically.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut es = Vec::with_capacity(self.m);
        for u in 0..self.n as NodeId {
            for &v in &self.adj[u as usize] {
                if u < v {
                    es.push((u, v));
                }
            }
        }
        es.sort_unstable();
        es
    }

    /// Returns a graph with nodes renamed by `perm` (node `v` becomes
    /// `perm[v]`). `perm` must be a permutation of `0..n`; this is validated.
    pub fn relabel(&self, perm: &[NodeId]) -> Result<Graph, GraphError> {
        assert_eq!(perm.len(), self.n, "permutation arity mismatch");
        let mut seen = vec![false; self.n];
        for &p in perm {
            if (p as usize) >= self.n {
                return Err(GraphError::NodeOutOfRange { node: p, n: self.n });
            }
            assert!(!seen[p as usize], "perm is not a permutation: {p} repeats");
            seen[p as usize] = true;
        }
        let mut g = Graph::new(self.n);
        for (u, v) in self.edges() {
            g.add_edge(perm[u as usize], perm[v as usize])?;
        }
        Ok(g)
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// symmetry of adjacency, no self-loops, no duplicates, and edge count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        for u in 0..self.n as NodeId {
            let mut seen: FxHashSet<NodeId> = FxHashSet::default();
            for &v in &self.adj[u as usize] {
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if (v as usize) >= self.n {
                    return Err(format!("neighbour {v} of {u} out of range"));
                }
                if !seen.insert(v) {
                    return Err(format!("duplicate edge {u}-{v}"));
                }
                if !self.adj[v as usize].contains(&u) {
                    return Err(format!("asymmetric edge {u}-{v}"));
                }
                count += 1;
            }
        }
        if count != 2 * self.m {
            return Err(format!(
                "edge count mismatch: counted {count}, expected {}",
                2 * self.m
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1).unwrap());
        assert!(g.add_edge(1, 2).unwrap());
        assert!(
            !g.add_edge(2, 1).unwrap(),
            "duplicate (reversed) edge must be ignored"
        );
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_self_loops_and_range() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        assert_eq!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn edges_sorted_canonical() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.edges(), vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn relabel_permutes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        // swap 0 and 2
        let h = g.relabel(&[2, 1, 0]).unwrap();
        assert_eq!(h.edges(), vec![(0, 1), (1, 2)]);
        // 0→1, 1→2, 2→0: edges (0,1)→(1,2) and (1,2)→(0,2)
        let h2 = g.relabel(&[1, 2, 0]).unwrap();
        assert_eq!(h2.edges(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let _ = g.relabel(&[0, 0]);
    }

    #[test]
    fn sorted_neighbors() {
        let g = Graph::from_edges(4, &[(1, 3), (1, 0), (1, 2)]).unwrap();
        assert_eq!(g.sorted_neighbors(1), vec![0, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_invariants().unwrap();
    }
}
