//! Configurations: the paper's central object (Section 2.1).
//!
//! A **configuration** is a simple undirected connected graph in which every
//! node `v` carries a non-negative integer wake-up tag `t_v`. Node `v` wakes
//! spontaneously in global round `t_v` unless it is woken earlier by
//! receiving a message. The **size** is the node count `n`; the **span** `σ`
//! is the difference between the largest and smallest tag. Since nodes have
//! no access to the global clock, configurations are considered up to a
//! common tag shift; [`Configuration::normalize`] shifts the minimum tag to
//! zero, after which the span equals the largest tag.

use std::fmt;
use std::sync::OnceLock;

use crate::algo::{is_connected, is_connected_csr};
use crate::csr::Csr;
use crate::graph::{Graph, NodeId};

/// Wake-up tag type. Tags are global round numbers; `u64` avoids any
/// realistic overflow in span sweeps (`H_m` experiments push `σ` to 2^12+).
pub type Tag = u64;

/// Errors from configuration construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Tag vector length differs from the node count.
    TagArity {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of tags supplied.
        tags: usize,
    },
    /// The underlying graph is not connected (the model requires it).
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TagArity { nodes, tags } => {
                write!(f, "{tags} tags supplied for {nodes} nodes")
            }
            ConfigError::Disconnected => write!(f, "configuration graphs must be connected"),
            ConfigError::Empty => write!(f, "configuration graphs must have at least one node"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A radio-network configuration: connected graph + wake-up tags.
///
/// The authoritative adjacency is the frozen [`Csr`] — everything on the
/// campaign hot path (simulator, classifier, fingerprinting) iterates it
/// directly. The mutable-form [`Graph`] is **lazy**: configurations built
/// from a graph carry it along, while CSR-direct configurations (the
/// million-node scale path, [`Configuration::from_csr`]) thaw one on first
/// [`Configuration::graph`] call and never pay for it otherwise.
#[derive(Debug, Clone)]
pub struct Configuration {
    csr: Csr,
    tags: Vec<Tag>,
    graph: OnceLock<Graph>,
}

/// Equality is semantic over the frozen form: same CSR adjacency + same
/// tags. Whether the lazy [`Graph`] has been thawed is unobservable.
impl PartialEq for Configuration {
    fn eq(&self, other: &Configuration) -> bool {
        self.csr == other.csr && self.tags == other.tags
    }
}

impl Eq for Configuration {}

impl Configuration {
    /// Builds a configuration, validating connectivity and tag arity.
    pub fn new(graph: Graph, tags: Vec<Tag>) -> Result<Configuration, ConfigError> {
        if graph.node_count() == 0 {
            return Err(ConfigError::Empty);
        }
        if tags.len() != graph.node_count() {
            return Err(ConfigError::TagArity {
                nodes: graph.node_count(),
                tags: tags.len(),
            });
        }
        if !is_connected(&graph) {
            return Err(ConfigError::Disconnected);
        }
        let csr = Csr::from_graph(&graph);
        let lock = OnceLock::new();
        let _ = lock.set(graph);
        Ok(Configuration {
            csr,
            tags,
            graph: lock,
        })
    }

    /// Builds a configuration straight from a frozen [`Csr`] — the
    /// CSR-direct scale path. Validation (non-empty, tag arity,
    /// connectivity) runs on the CSR itself; no adjacency-list graph is
    /// materialized unless [`Configuration::graph`] is later called.
    pub fn from_csr(csr: Csr, tags: Vec<Tag>) -> Result<Configuration, ConfigError> {
        if csr.node_count() == 0 {
            return Err(ConfigError::Empty);
        }
        if tags.len() != csr.node_count() {
            return Err(ConfigError::TagArity {
                nodes: csr.node_count(),
                tags: tags.len(),
            });
        }
        if !is_connected_csr(&csr) {
            return Err(ConfigError::Disconnected);
        }
        Ok(Configuration {
            csr,
            tags,
            graph: OnceLock::new(),
        })
    }

    /// Builds a configuration where every node has the same tag.
    pub fn with_uniform_tags(graph: Graph, tag: Tag) -> Result<Configuration, ConfigError> {
        let n = graph.node_count();
        Configuration::new(graph, vec![tag; n])
    }

    /// Replaces the tags, reusing the already-validated graph and its
    /// frozen CSR — no clone, no connectivity re-check. The cheap path
    /// for sweeps that draw many tag assignments over one graph.
    pub fn retag(self, tags: Vec<Tag>) -> Result<Configuration, ConfigError> {
        if tags.len() != self.csr.node_count() {
            return Err(ConfigError::TagArity {
                nodes: self.csr.node_count(),
                tags: tags.len(),
            });
        }
        Ok(Configuration {
            csr: self.csr,
            tags,
            graph: self.graph,
        })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn size(&self) -> usize {
        self.csr.node_count()
    }

    /// The mutable-form graph, thawed from the CSR on first use for
    /// CSR-direct configurations (enumeration, IO, and tests only — the
    /// campaign hot path never calls this).
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| self.csr.to_graph())
    }

    /// The frozen CSR adjacency (what the simulator and classifier iterate).
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Wake-up tag of node `v`.
    #[inline]
    pub fn tag(&self, v: NodeId) -> Tag {
        self.tags[v as usize]
    }

    /// All tags, indexed by node.
    #[inline]
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Smallest tag.
    pub fn min_tag(&self) -> Tag {
        *self.tags.iter().min().expect("non-empty")
    }

    /// Largest tag.
    pub fn max_tag(&self) -> Tag {
        *self.tags.iter().max().expect("non-empty")
    }

    /// Span `σ` = max tag − min tag.
    pub fn span(&self) -> Tag {
        self.max_tag() - self.min_tag()
    }

    /// Maximum degree Δ of the graph.
    pub fn max_degree(&self) -> usize {
        self.csr.max_degree()
    }

    /// True if the smallest tag is zero (the canonical representative of the
    /// shift-equivalence class).
    pub fn is_normalized(&self) -> bool {
        self.min_tag() == 0
    }

    /// Returns the shift-normalized configuration (smallest tag 0). Nodes
    /// cannot observe a common shift of all tags, so this preserves
    /// feasibility and every algorithm's behaviour.
    pub fn normalize(&self) -> Configuration {
        let lo = self.min_tag();
        if lo == 0 {
            return self.clone();
        }
        let tags = self.tags.iter().map(|t| t - lo).collect();
        Configuration {
            csr: self.csr.clone(),
            tags,
            graph: self.graph.clone(),
        }
    }

    /// Returns the configuration with all tags shifted up by `delta`
    /// (useful for invariance tests).
    pub fn shift_tags(&self, delta: Tag) -> Configuration {
        let tags = self.tags.iter().map(|t| t + delta).collect();
        Configuration {
            csr: self.csr.clone(),
            tags,
            graph: self.graph.clone(),
        }
    }

    /// Relabels nodes by the permutation `perm` (node `v` becomes
    /// `perm[v]`), carrying tags along. Feasibility is invariant under
    /// relabelling since nodes are anonymous.
    pub fn relabel(&self, perm: &[NodeId]) -> Configuration {
        let graph = self.graph().relabel(perm).expect("valid permutation");
        let mut tags = vec![0; self.tags.len()];
        for (v, &t) in self.tags.iter().enumerate() {
            tags[perm[v] as usize] = t;
        }
        Configuration::new(graph, tags).expect("relabelling preserves validity")
    }

    /// Nodes grouped by tag, sorted by tag value — handy for traces.
    pub fn nodes_by_tag(&self) -> Vec<(Tag, Vec<NodeId>)> {
        let mut map: std::collections::BTreeMap<Tag, Vec<NodeId>> = Default::default();
        for (v, &t) in self.tags.iter().enumerate() {
            map.entry(t).or_default().push(v as NodeId);
        }
        map.into_iter().collect()
    }

    /// True iff `perm` is an automorphism of the *configuration*: a node
    /// permutation preserving both adjacency and tags.
    ///
    /// Automorphisms are the formal backbone of the paper's impossibility
    /// arguments: under any deterministic algorithm, nodes related by a
    /// configuration automorphism keep identical histories forever, so a
    /// node moved by some automorphism can never be the unique leader.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn is_automorphism(&self, perm: &[NodeId]) -> bool {
        let n = self.size();
        assert_eq!(perm.len(), n, "permutation arity mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!((p as usize) < n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
        // tags preserved
        if (0..n).any(|v| self.tags[v] != self.tags[perm[v] as usize]) {
            return false;
        }
        // adjacency preserved (bijectivity makes one direction sufficient);
        // iterate the CSR so CSR-direct configurations stay graph-free
        for u in 0..n as NodeId {
            for &v in self.csr.neighbors(u) {
                if u < v && !self.csr.has_edge(perm[u as usize], perm[v as usize]) {
                    return false;
                }
            }
        }
        true
    }

    /// True iff some non-identity configuration automorphism moves node
    /// `v` — a *certificate of non-electability* for `v`. Exhaustive over
    /// all permutations, so only usable for small `n` (≤ 8); the census
    /// experiments use it as an oracle.
    pub fn is_moved_by_some_automorphism(&self, v: NodeId) -> bool {
        let n = self.size();
        assert!(
            n <= 8,
            "exhaustive automorphism search is exponential; n ≤ 8 only"
        );
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        search_moving_automorphism(self, &mut perm, 0, v)
    }
}

/// DFS over permutations with early pruning: extends `perm[..k]` and
/// checks partial adjacency/tag consistency at each step.
fn search_moving_automorphism(
    config: &Configuration,
    perm: &mut Vec<NodeId>,
    k: usize,
    target: NodeId,
) -> bool {
    let n = config.size();
    if k == n {
        return perm[target as usize] != target && config.is_automorphism(perm);
    }
    for i in k..n {
        perm.swap(k, i);
        // prune: tags must match and adjacency to already-placed nodes
        // must be preserved
        let image = perm[k] as usize;
        let ok_tag = config.tags[k] == config.tags[image];
        let ok_adj = (0..k).all(|u| {
            config.csr.has_edge(u as NodeId, k as NodeId) == config.csr.has_edge(perm[u], perm[k])
        });
        if ok_tag && ok_adj && search_moving_automorphism(config, perm, k + 1, target) {
            perm.swap(k, i);
            return true;
        }
        perm.swap(k, i);
    }
    false
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Configuration(n={}, m={}, σ={}, Δ={})",
            self.size(),
            self.csr.edge_count(),
            self.span(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn p4() -> Configuration {
        Configuration::new(generators::path(4), vec![3, 0, 0, 4]).unwrap()
    }

    #[test]
    fn validates_inputs() {
        assert_eq!(
            Configuration::new(Graph::new(0), vec![]).unwrap_err(),
            ConfigError::Empty
        );
        assert_eq!(
            Configuration::new(generators::path(3), vec![0, 1]).unwrap_err(),
            ConfigError::TagArity { nodes: 3, tags: 2 }
        );
        let mut disconnected = Graph::new(4);
        disconnected.add_edge(0, 1).unwrap();
        disconnected.add_edge(2, 3).unwrap();
        assert_eq!(
            Configuration::new(disconnected, vec![0; 4]).unwrap_err(),
            ConfigError::Disconnected
        );
    }

    #[test]
    fn from_csr_matches_graph_construction() {
        let g = generators::path(4);
        let via_graph = Configuration::new(g.clone(), vec![3, 0, 0, 4]).unwrap();
        let via_csr = Configuration::from_csr(Csr::from_graph(&g), vec![3, 0, 0, 4]).unwrap();
        assert_eq!(via_graph, via_csr);
        // the lazy graph thaws to the same adjacency
        assert_eq!(via_csr.graph().edges(), g.edges());
        assert_eq!(format!("{via_csr}"), format!("{via_graph}"));
    }

    #[test]
    fn from_csr_validates_like_new() {
        assert_eq!(
            Configuration::from_csr(Csr::from_graph(&Graph::new(0)), vec![]).unwrap_err(),
            ConfigError::Empty
        );
        assert_eq!(
            Configuration::from_csr(Csr::from_graph(&generators::path(3)), vec![0, 1]).unwrap_err(),
            ConfigError::TagArity { nodes: 3, tags: 2 }
        );
        let mut disconnected = Graph::new(4);
        disconnected.add_edge(0, 1).unwrap();
        disconnected.add_edge(2, 3).unwrap();
        assert_eq!(
            Configuration::from_csr(Csr::from_graph(&disconnected), vec![0; 4]).unwrap_err(),
            ConfigError::Disconnected
        );
    }

    #[test]
    fn span_and_extremes() {
        let c = p4();
        assert_eq!(c.size(), 4);
        assert_eq!(c.min_tag(), 0);
        assert_eq!(c.max_tag(), 4);
        assert_eq!(c.span(), 4);
        assert!(c.is_normalized());
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn normalization_shifts_min_to_zero() {
        let c = Configuration::new(generators::path(3), vec![5, 7, 6]).unwrap();
        assert!(!c.is_normalized());
        let nrm = c.normalize();
        assert_eq!(nrm.tags(), &[0, 2, 1]);
        assert_eq!(nrm.span(), c.span());
        // shifting then normalizing round-trips
        assert_eq!(c.shift_tags(10).normalize().tags(), nrm.tags());
    }

    #[test]
    fn relabel_carries_tags() {
        let c = p4();
        let r = c.relabel(&[3, 2, 1, 0]);
        assert_eq!(r.tags(), &[4, 0, 0, 3]);
        assert_eq!(
            r.graph().edges(),
            c.graph().edges(),
            "path reversal is an automorphism"
        );
    }

    #[test]
    fn retag_swaps_tags_without_revalidation() {
        let c = p4();
        let csr_edges = c.csr().clone();
        let r = c.retag(vec![9, 8, 7, 6]).unwrap();
        assert_eq!(r.tags(), &[9, 8, 7, 6]);
        assert_eq!(r.csr().max_degree(), csr_edges.max_degree());
        assert_eq!(
            p4().retag(vec![1, 2]).unwrap_err(),
            ConfigError::TagArity { nodes: 4, tags: 2 }
        );
    }

    #[test]
    fn uniform_tags_constructor() {
        let c = Configuration::with_uniform_tags(generators::cycle(5), 2).unwrap();
        assert_eq!(c.span(), 0);
        assert_eq!(c.min_tag(), 2);
    }

    #[test]
    fn groups_by_tag() {
        let c = p4();
        assert_eq!(
            c.nodes_by_tag(),
            vec![(0, vec![1, 2]), (3, vec![0]), (4, vec![3])]
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", p4()), "Configuration(n=4, m=3, σ=4, Δ=2)");
    }

    #[test]
    fn mirror_is_automorphism_of_symmetric_tags_only() {
        // path with palindromic tags: mirror is an automorphism
        let sym = Configuration::new(generators::path(4), vec![1, 0, 0, 1]).unwrap();
        assert!(sym.is_automorphism(&[3, 2, 1, 0]));
        // break the palindrome: no longer an automorphism
        let asym = Configuration::new(generators::path(4), vec![1, 0, 0, 2]).unwrap();
        assert!(!asym.is_automorphism(&[3, 2, 1, 0]));
        // identity is always an automorphism
        assert!(asym.is_automorphism(&[0, 1, 2, 3]));
        // a permutation breaking adjacency is not
        let uniform = Configuration::with_uniform_tags(generators::path(3), 0).unwrap();
        assert!(
            !uniform.is_automorphism(&[1, 0, 2]),
            "maps edge {{1,2}} to non-edge {{0,2}}"
        );
    }

    #[test]
    fn moved_by_automorphism_detects_symmetric_nodes() {
        // uniform 4-cycle: every node is moved by the rotation
        let cyc = Configuration::with_uniform_tags(generators::cycle(4), 0).unwrap();
        for v in 0..4 {
            assert!(cyc.is_moved_by_some_automorphism(v), "node {v}");
        }
        // uniform path P_3: ends are swapped, the centre is fixed by all
        let p3 = Configuration::with_uniform_tags(generators::path(3), 0).unwrap();
        assert!(p3.is_moved_by_some_automorphism(0));
        assert!(p3.is_moved_by_some_automorphism(2));
        assert!(
            !p3.is_moved_by_some_automorphism(1),
            "the centre is structurally unique"
        );
        // distinct tags: rigid, nothing moves
        let rigid = Configuration::new(generators::cycle(4), vec![0, 1, 2, 3]).unwrap();
        for v in 0..4 {
            assert!(!rigid.is_moved_by_some_automorphism(v));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn automorphism_rejects_non_permutations() {
        let c = p4();
        let _ = c.is_automorphism(&[0, 0, 1, 2]);
    }
}
