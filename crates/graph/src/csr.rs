//! Compressed-sparse-row adjacency: the frozen, cache-friendly graph form
//! consumed by the simulator's per-round loop and by the classifier.
//!
//! Neighbour lists are stored back-to-back in one `Vec<NodeId>` with an
//! offsets array; neighbours of each node are sorted, which gives the fixed
//! node ordering the paper's `Classifier` relies on ("we fix an arbitrary
//! ordering of the vertices") and makes iteration branch-predictable.

use std::sync::Arc;

use crate::graph::{Graph, NodeId};

/// The frozen buffers behind a [`Csr`], shared by every clone.
#[derive(Debug, PartialEq, Eq)]
struct CsrInner {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

/// Immutable CSR adjacency structure.
///
/// The offset/target buffers live behind an [`Arc`]: cloning a `Csr` (and
/// therefore a `Configuration`) is O(1) and never duplicates the adjacency
/// — at 10⁶ nodes and 10⁸ edges a deep copy would cost ~0.8 GB, and the
/// election pipeline clones configurations into compiled algorithms.
#[derive(Debug, Clone)]
pub struct Csr {
    inner: Arc<CsrInner>,
}

/// Content equality (same adjacency), with an `Arc` identity fast path.
impl PartialEq for Csr {
    fn eq(&self, other: &Csr) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

impl Eq for Csr {}

impl Csr {
    fn from_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Csr {
        Csr {
            inner: Arc::new(CsrInner { offsets, targets }),
        }
    }
    /// Freezes a [`Graph`] into CSR form (neighbour lists sorted): one
    /// counting pass sizes `targets` exactly, then each node's neighbours
    /// are copied into their final slice and sorted in place — no per-node
    /// scratch allocation.
    pub fn from_graph(g: &Graph) -> Csr {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for v in 0..n as NodeId {
            total += g.neighbors(v).len() as u32;
            offsets.push(total);
        }
        let mut targets = vec![0 as NodeId; total as usize];
        for v in 0..n as NodeId {
            let lo = offsets[v as usize] as usize;
            let hi = offsets[v as usize + 1] as usize;
            let row = &mut targets[lo..hi];
            row.copy_from_slice(g.neighbors(v));
            row.sort_unstable();
        }
        Csr::from_parts(offsets, targets)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.inner.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.inner.targets.len() / 2
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.inner.offsets[v as usize] as usize;
        let hi = self.inner.offsets[v as usize + 1] as usize;
        &self.inner.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.inner.offsets[v as usize + 1] - self.inner.offsets[v as usize]) as usize
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Binary-searches the sorted neighbour list for `v`–`w` adjacency.
    pub fn has_edge(&self, v: NodeId, w: NodeId) -> bool {
        self.neighbors(v).binary_search(&w).is_ok()
    }

    /// Thaws back into a mutable [`Graph`] (used by IO round-trips).
    pub fn to_graph(&self) -> Graph {
        let n = self.node_count();
        let mut g = Graph::new(n);
        for v in 0..n as NodeId {
            for &w in self.neighbors(v) {
                if v < w {
                    g.add_edge(v, w).expect("CSR edges are valid");
                }
            }
        }
        g
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Csr {
        Csr::from_graph(g)
    }
}

/// Incremental CSR assembly from a pre-counted degree sequence: the core of
/// the million-node scale path. Generators stream their edges straight into
/// the frozen layout — no intermediate adjacency-list [`Graph`], no per-node
/// scratch vectors.
///
/// Contract: [`CsrBuilder::from_degrees`] fixes the exact per-node slot
/// counts up front (deterministic families know them closed-form; random
/// families count with a dry pass over the same positional RNG stream);
/// every subsequent [`CsrBuilder::push_edge`] fills two slots; and
/// [`CsrBuilder::finish`] sorts each neighbour row in place, yielding a
/// [`Csr`] byte-identical to `Csr::from_graph` over the same edge set.
///
/// # Panics
/// `from_degrees` panics if the implied `targets` length overflows the
/// `u32` offset space; `push_edge` panics (via the indexing) on more edges
/// at a node than its declared degree; `finish` panics if any slot was
/// left unfilled.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    cursor: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrBuilder {
    /// Allocates the exact CSR layout for the given degree sequence.
    pub fn from_degrees(degrees: &[u32]) -> CsrBuilder {
        let n = degrees.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u64;
        for &d in degrees {
            total += u64::from(d);
            assert!(
                total <= u64::from(u32::MAX),
                "degree sum {total} overflows the u32 CSR offset space"
            );
            offsets.push(total as u32);
        }
        let cursor = offsets[..n].to_vec();
        CsrBuilder {
            offsets,
            cursor,
            targets: vec![0 as NodeId; total as usize],
        }
    }

    /// Records the undirected edge `u`–`v` (fills one slot on each side).
    #[inline]
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert_ne!(u, v, "self-loops are not simple edges");
        let cu = self.cursor[u as usize];
        debug_assert!(cu < self.offsets[u as usize + 1], "degree overflow at {u}");
        self.targets[cu as usize] = v;
        self.cursor[u as usize] = cu + 1;
        let cv = self.cursor[v as usize];
        debug_assert!(cv < self.offsets[v as usize + 1], "degree overflow at {v}");
        self.targets[cv as usize] = u;
        self.cursor[v as usize] = cv + 1;
    }

    /// Sorts every neighbour row in place and freezes the [`Csr`].
    pub fn finish(mut self) -> Csr {
        let n = self.offsets.len() - 1;
        for v in 0..n {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            assert_eq!(
                self.cursor[v] as usize, hi,
                "node {v} received fewer edges than its declared degree"
            );
            self.targets[lo..hi].sort_unstable();
        }
        Csr::from_parts(self.offsets, self.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_a_path() {
        let g = generators::path(5);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(2), &[1, 3]);
        assert_eq!(csr.degree(2), 2);
        assert_eq!(csr.max_degree(), 2);
        assert!(csr.has_edge(1, 2));
        assert!(!csr.has_edge(0, 2));
        let back = csr.to_graph();
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn neighbors_are_sorted_even_from_unsorted_builder() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn builder_matches_from_graph() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        let mut b = CsrBuilder::from_degrees(&[1, 1, 3, 1]);
        b.push_edge(2, 0);
        b.push_edge(2, 3);
        b.push_edge(2, 1);
        assert_eq!(b.finish(), Csr::from_graph(&g));
    }

    #[test]
    #[should_panic(expected = "fewer edges")]
    fn builder_rejects_underfilled_rows() {
        let b = CsrBuilder::from_degrees(&[1, 1]);
        let _ = b.finish();
    }

    #[test]
    fn empty_and_singleton() {
        let csr = Csr::from_graph(&Graph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
        let csr1 = Csr::from_graph(&Graph::new(1));
        assert_eq!(csr1.node_count(), 1);
        assert_eq!(csr1.neighbors(0), &[] as &[NodeId]);
    }
}
