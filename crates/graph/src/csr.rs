//! Compressed-sparse-row adjacency: the frozen, cache-friendly graph form
//! consumed by the simulator's per-round loop and by the classifier.
//!
//! Neighbour lists are stored back-to-back in one `Vec<NodeId>` with an
//! offsets array; neighbours of each node are sorted, which gives the fixed
//! node ordering the paper's `Classifier` relies on ("we fix an arbitrary
//! ordering of the vertices") and makes iteration branch-predictable.

use crate::graph::{Graph, NodeId};

/// Immutable CSR adjacency structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Freezes a [`Graph`] into CSR form (neighbour lists sorted).
    pub fn from_graph(g: &Graph) -> Csr {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for v in 0..n as NodeId {
            let mut ns = g.neighbors(v).to_vec();
            ns.sort_unstable();
            targets.extend_from_slice(&ns);
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Binary-searches the sorted neighbour list for `v`–`w` adjacency.
    pub fn has_edge(&self, v: NodeId, w: NodeId) -> bool {
        self.neighbors(v).binary_search(&w).is_ok()
    }

    /// Thaws back into a mutable [`Graph`] (used by IO round-trips).
    pub fn to_graph(&self) -> Graph {
        let n = self.node_count();
        let mut g = Graph::new(n);
        for v in 0..n as NodeId {
            for &w in self.neighbors(v) {
                if v < w {
                    g.add_edge(v, w).expect("CSR edges are valid");
                }
            }
        }
        g
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Csr {
        Csr::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_a_path() {
        let g = generators::path(5);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(2), &[1, 3]);
        assert_eq!(csr.degree(2), 2);
        assert_eq!(csr.max_degree(), 2);
        assert!(csr.has_edge(1, 2));
        assert!(!csr.has_edge(0, 2));
        let back = csr.to_graph();
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn neighbors_are_sorted_even_from_unsorted_builder() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        let csr = Csr::from_graph(&Graph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
        let csr1 = Csr::from_graph(&Graph::new(1));
        assert_eq!(csr1.node_count(), 1);
        assert_eq!(csr1.neighbors(0), &[] as &[NodeId]);
    }
}
