//! Criterion: the canonical-key schedule cache on a repeated-shape
//! campaign grid — warm-cache vs `--no-cache` — plus the classify+compile
//! micro-comparison the campaign numbers decompose into.
//!
//! **Gate (≥2×, alongside the batch.rs/classify.rs gates):** the
//! `cache_campaign/warm` benchmark must run at least 2× faster than
//! `cache_campaign/no_cache` on the repeated-shape grid below. The grid
//! is a feasibility-landscape sweep over *dense* shapes (complete:48/64,
//! bipartite:32x32) where span 3 leaves every cell infeasible: no
//! simulation runs, so classify + compile is the entire per-run cost on
//! the uncached side — exactly the half the cache memoizes. The warm
//! runner answers every lookup from the exact-key level (`clustered`/
//! `extremes`/`arith` redraw the same tag vector every rep; `uniform`
//! draws were all seen by the priming pass, criterion re-iterations
//! replay identical positional seeds) and pays only derivation +
//! fingerprint + aggregation. Feasible sparse grids (e.g. star:32/
//! path:48) are simulation-bound — the cache is correct but invisible
//! there (~1.1×), which is why the gate grid is the dense one.
//! Locally measured (release, 4 worker threads): no_cache ≈ 62 ms/iter,
//! warm ≈ 28 ms/iter — ≈2.2×; `cache_solve` shows the per-call gap at
//! ≈8.6× on the repeated 48-node path. Regressions below 2× mean the key
//! derivation started missing (stability bug) or the cached path grew a
//! deep copy.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radio_bench::campaign::{
    BatchConfig, CacheConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, ScheduleCache,
    TagStrategy,
};
use radio_classifier::ClassifierWorkspace;
use radio_graph::{generators, tags, Configuration};
use radio_sim::{ModelKind, RunOpts};
use std::sync::Arc;

/// The repeated-shape grid: three dense shapes (complete:48, complete:64,
/// bipartite:32x32) × all four tag strategies × enough reps that
/// classify+compile dominates the uncached runtime. 3 shapes ×
/// 4 strategies × 125 reps = 1500 runs, ~750 distinct keys — well inside
/// the default capacity, so the warm pass never evicts.
fn repeated_shape_spec(cache: CacheConfig) -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![FamilySpec::Complete, "bipartite:32x32".parse().unwrap()],
        tags: TagStrategy::ALL.to_vec(),
        sizes: vec![48, 64],
        spans: vec![3],
        models: vec![ModelKind::NoCollisionDetection],
        reps: 125,
        seed: 0xCAC4E,
        opts: RunOpts::default(),
        cache,
        batch: BatchConfig::default(),
    }
}

fn bench_cache_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_campaign");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(3000));
    let runs = repeated_shape_spec(CacheConfig::default()).total_runs() as u64;
    group.throughput(Throughput::Elements(runs));
    let threads = 4;

    // `--no-cache`: every run classifies and compiles from scratch.
    group.bench_function("no_cache", |b| {
        b.iter(|| {
            let mut runner = CampaignRunner::new(repeated_shape_spec(CacheConfig::disabled()), 1);
            runner.run_to_completion(threads);
            runner.aggregates().map(|(_, a)| a.runs).sum::<u64>()
        })
    });

    // Warm cache: one shared cache primed by a first pass, then reused by
    // every iteration (criterion re-runs replay identical positional
    // draws, so after the priming pass every lookup is an exact hit).
    let warm = Arc::new(ScheduleCache::default());
    {
        let mut primer = CampaignRunner::with_cache(
            repeated_shape_spec(CacheConfig::default()),
            1,
            Some(warm.clone()),
        );
        primer.run_to_completion(threads);
    }
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut runner = CampaignRunner::with_cache(
                repeated_shape_spec(CacheConfig::default()),
                1,
                Some(warm.clone()),
            );
            runner.run_to_completion(threads);
            runner.aggregates().map(|(_, a)| a.runs).sum::<u64>()
        })
    });
    group.finish();
}

fn bench_cache_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_solve");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(2000));

    // One repeated 48-node path with distinct tags: the worst case for
    // recomputation (n distinct classes → full refinement work) and the
    // best case for the cache (same exact key every call).
    let mut rng = radio_util::rng::rng_from(7);
    let config: Configuration = tags::distinct_shuffled(generators::path(48), &mut rng);

    group.bench_function("compile_every_call", |b| {
        let mut ws = ClassifierWorkspace::new();
        b.iter(|| {
            anon_radio::CompiledElection::compile_in(&mut ws, &config)
                .summary()
                .num_classes
        })
    });

    group.bench_function("cached_exact_hit", |b| {
        let cache = ScheduleCache::default();
        let mut ws = ClassifierWorkspace::new();
        let _ = cache.compile_in(&mut ws, &config); // prime
        b.iter(|| cache.compile_in(&mut ws, &config).0.summary().num_classes)
    });
    group.finish();
}

criterion_group!(benches, bench_cache_campaign, bench_cache_solve);
criterion_main!(benches);
