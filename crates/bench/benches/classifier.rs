//! Criterion: `Classifier` wall time (fast engine) across families and
//! sizes — the E1 companion timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::workloads::{scaling_families, with_random_tags};
use radio_classifier::{classify_with, Engine};

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_fast");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));
    for family in scaling_families() {
        for n in [32usize, 128] {
            let graph = (family.make)(n, 42);
            let config = with_random_tags(graph, 4, 42 ^ n as u64);
            group.bench_with_input(BenchmarkId::new(family.name, n), &config, |b, config| {
                b.iter(|| classify_with(config, Engine::Fast).iterations)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
