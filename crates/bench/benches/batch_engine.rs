//! Criterion: the fused batch engine on the 10k-rep small-graph elect
//! campaign — batched (the default) vs `--no-batch` one-run-per-worker —
//! plus the engine-only fused-vs-sequential comparison the campaign
//! numbers decompose into.
//!
//! **Gate (≥1.5×, alongside the cache.rs/classify.rs gates):** the
//! `batch_campaign/batched` benchmark must run at least 1.5× faster than
//! `batch_campaign/one_per_worker` on the grid below: path:8 + star:8 ×
//! arith-stride-1 tags × span 4 × Beeping × 5000 reps = 10 000 runs.
//! Small graphs make the per-run fixed costs (workspace dispatch,
//! per-run schedule-cache lookups, metric materialization) the dominant
//! term — exactly what the batch path amortizes: one cache lookup per
//! distinct fingerprint per batch, the `u64`-bitset observation fast
//! path for Beeping, materialization-free `MemberView` metrics, and
//! within-batch execution sharing for duplicate draws (arith tags over
//! span 4 redraw a handful of distinct configurations per cell, so most
//! members of a 16-run batch copy a representative's bit-identical
//! shape instead of re-simulating it). Locally measured (release,
//! 1 worker thread): one_per_worker ≈ 33 ms/iter (≈3.3 µs/run),
//! batched ≈ 13 ms/iter (≈1.3 µs/run) — ≈2.6×. Regressions below 1.5×
//! mean a batch-path fixed cost grew (per-member allocation, lost
//! dedupe) or the fast path stopped engaging.
//!
//! `batch_engine_only` isolates the engine itself — `run_batch_fused`
//! vs `run_batch` on identical configuration slices, no campaign layer,
//! no dedupe — so a campaign-level regression can be attributed to the
//! engine or to the metrics layer by comparing the two groups. This
//! group is *ungated* and close to parity by design (locally ≈2.9 vs
//! ≈3.2 ms/iter, fused ~9% slower on fully distinct configs): with
//! every member distinct and full Executions materialized, the fused
//! loop's extra bookkeeping is all cost and no amortization. The
//! campaign-level win comes from what the batch boundary *enables* —
//! lookup dedupe, execution sharing, materialization-free metrics —
//! which is exactly why the gate lives on the campaign group.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radio_bench::campaign::{
    BatchConfig, CacheConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy,
};
use radio_graph::Configuration;
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{parallel, ModelKind, Msg, RunOpts};

/// The gate grid: 2 families × 1 strategy × 1 size × 1 span × 1 model ×
/// 5000 reps = 10 000 runs, every graph n = 8 (so the Beeping bitset
/// fast path and the one-cache-lookup-per-fingerprint dedupe both
/// engage on every batch).
fn small_graph_spec(batch: BatchConfig) -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![FamilySpec::Path, FamilySpec::Star],
        tags: vec![TagStrategy::Arith { stride: 1 }],
        sizes: vec![8],
        spans: vec![4],
        models: vec![ModelKind::Beeping],
        reps: 5_000,
        seed: 0xBA7C4E,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch,
    }
}

fn bench_batch_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_campaign");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(3000));
    let runs = small_graph_spec(BatchConfig::default()).total_runs() as u64;
    group.throughput(Throughput::Elements(runs));
    let threads = parallel::default_threads();

    // `--no-batch`: the one-run-per-worker path — every run pays its own
    // cache lookup, workspace dispatch, and Execution materialization.
    group.bench_function("one_per_worker", |b| {
        b.iter(|| {
            let mut runner = CampaignRunner::new(small_graph_spec(BatchConfig::disabled()), 1);
            runner.run_to_completion(threads);
            runner.aggregates().map(|(_, a)| a.runs).sum::<u64>()
        })
    });

    // The default: fused batches of `BatchConfig::DEFAULT_SIZE`.
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut runner = CampaignRunner::new(small_graph_spec(BatchConfig::default()), 1);
            runner.run_to_completion(threads);
            runner.aggregates().map(|(_, a)| a.runs).sum::<u64>()
        })
    });
    group.finish();
}

fn bench_batch_engine_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine_only");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(3000));

    // 1024 distinct 8-node stars (rotated tag vectors — no duplicate
    // fingerprints, so nothing for sharing to collapse: this measures
    // the engine's own per-run overhead, not the dedupe).
    let configs: Vec<Configuration> = (0..1024u64)
        .map(|i| {
            let graph = FamilySpec::Star.build(8, 0).unwrap();
            let tags: Vec<u64> = (0..8).map(|v| (v + i) % 8).collect();
            Configuration::new(graph, tags).unwrap()
        })
        .collect();
    let factory = WaitThenTransmitFactory {
        wait: 1,
        msg: Msg(3),
        lifetime: 12,
    };
    group.throughput(Throughput::Elements(configs.len() as u64));

    group.bench_function("one_per_worker", |b| {
        b.iter(|| {
            parallel::run_batch(&configs, &factory, ModelKind::Beeping, RunOpts::default()).len()
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            parallel::run_batch_fused(
                &configs,
                &factory,
                ModelKind::Beeping,
                RunOpts::default(),
                BatchConfig::DEFAULT_SIZE,
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_campaign, bench_batch_engine_only);
criterion_main!(benches);
