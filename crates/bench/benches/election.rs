//! Criterion: end-to-end dedicated election (classify + compile + simulate
//! + decide) on the paper families — the E3/E4/E5 companion timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_graph::families;

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedicated_election");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));

    for m in [8u64, 64, 512] {
        let config = families::h_m(m);
        group.bench_with_input(BenchmarkId::new("H_m", m), &config, |b, config| {
            b.iter(|| anon_radio::elect_leader(config).unwrap().leader)
        });
    }
    for m in [2usize, 4, 8] {
        let config = families::g_m(m);
        group.bench_with_input(BenchmarkId::new("G_m", m), &config, |b, config| {
            b.iter(|| anon_radio::elect_leader(config).unwrap().leader)
        });
    }

    // solve (compile only) vs full run, to separate classifier cost from
    // simulation cost
    let config = families::g_m(6);
    group.bench_function("G_6/solve_only", |b| {
        b.iter(|| anon_radio::solve(&config).unwrap().rounds_bound())
    });
    group.finish();
}

criterion_group!(benches, bench_election);
criterion_main!(benches);
