//! Criterion: repeated-classification throughput — per-run fresh state
//! versus a recycled `ClassifierWorkspace` (the acceptance gate for the
//! workspace refactor: ≥ 1.5× on a campaign-style batch at n ≥ 512).
//!
//! `fresh` is the pre-workspace path a campaign would have paid per run:
//! the eager `classify` call, which allocates refine state, a heap
//! `Label` per node per iteration, and materialized partition records.
//! `reuse` is the campaign worker's path: one long-lived workspace,
//! record-free summaries, interned labels, incremental worklist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_bench::workloads::with_random_tags;
use radio_classifier::{classify, ClassifierWorkspace};
use radio_graph::{generators, Configuration};

/// A campaign-style batch: a family mix at one size, distinct tag draws.
fn batch(n: usize) -> Vec<Configuration> {
    (0..9u64)
        .map(|i| {
            let graph = match i % 3 {
                0 => generators::path(n),
                1 => generators::balanced_tree(n, 2),
                _ => generators::star(n),
            };
            with_random_tags(graph, 8, 42 ^ n as u64 ^ (i << 16))
        })
        .collect()
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_campaign");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2000));
    for n in [512usize, 1024] {
        let configs = batch(n);
        group.throughput(Throughput::Elements(configs.len() as u64));
        group.bench_with_input(BenchmarkId::new("fresh", n), &configs, |b, configs| {
            b.iter(|| {
                configs
                    .iter()
                    .filter(|config| classify(config).feasible)
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("reuse", n), &configs, |b, configs| {
            let mut ws = ClassifierWorkspace::new();
            b.iter(|| {
                configs
                    .iter()
                    .filter(|config| ws.summarize_in(config).feasible)
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
