//! Criterion: batch execution architecture — the old path (fresh engine
//! allocations per run, per-item `Mutex<Option<R>>` result slots) against
//! the new one (one long-lived `SimWorkspace` per worker, chunked cursor
//! with direct slot writes) on a ≥10k-run campaign, plus the
//! single-threaded engine-only fresh-vs-reuse comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use radio_graph::{generators, Configuration};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::parallel::{default_threads, par_map_init, par_map_mutex_baseline};
use radio_sim::{Executor, Msg, RunOpts, SimWorkspace};

/// 10k small flood configurations with varied shapes and tag spreads —
/// enough runs that per-run allocation and per-item locking dominate the
/// measured difference.
fn campaign_configs() -> Vec<Configuration> {
    (0..10_000u64)
        .map(|i| {
            let n = 4 + (i % 5) as usize; // 4..=8 nodes
            let tags: Vec<u64> = (0..n as u64).map(|v| (v * 3 + i) % 7).collect();
            let graph = if i % 2 == 0 {
                generators::path(n)
            } else {
                generators::star(n)
            };
            Configuration::new(graph, tags).expect("valid configuration")
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(3000));

    let configs = campaign_configs();
    let factory = WaitThenTransmitFactory {
        wait: 1,
        msg: Msg::ONE,
        lifetime: 16,
    };
    let threads = default_threads();
    group.throughput(Throughput::Elements(configs.len() as u64));

    // The pre-refactor batch path: a fresh executor (all engine state
    // reallocated) per run, one contended-capable Mutex slot per item.
    group.bench_function("fresh_run_mutex_slots_10k", |b| {
        b.iter(|| {
            let out = par_map_mutex_baseline(&configs, threads, |config| {
                Executor::run(config, &factory, RunOpts::default())
                    .unwrap()
                    .rounds
            });
            out.iter().sum::<u64>()
        })
    });

    // The campaign path: one workspace per worker, chunked direct writes.
    group.bench_function("workspace_reuse_chunked_10k", |b| {
        b.iter(|| {
            let out = par_map_init(&configs, threads, SimWorkspace::new, |ws, config| {
                ws.run(config, &factory, RunOpts::default()).unwrap().rounds
            });
            out.iter().sum::<u64>()
        })
    });

    // Engine-only comparison, single thread: how much of the gain is the
    // workspace itself (no parallel layer in the loop).
    group.bench_function("fresh_run_serial_10k", |b| {
        b.iter(|| {
            configs
                .iter()
                .map(|config| {
                    Executor::run(config, &factory, RunOpts::default())
                        .unwrap()
                        .rounds
                })
                .sum::<u64>()
        })
    });
    group.bench_function("workspace_reuse_serial_10k", |b| {
        let mut ws = SimWorkspace::new();
        b.iter(|| {
            configs
                .iter()
                .map(|config| ws.run(config, &factory, RunOpts::default()).unwrap().rounds)
                .sum::<u64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
