//! Criterion: raw simulator throughput — the E10 companion timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_graph::{generators, Configuration};
use radio_sim::drip::{SilentFactory, WaitThenTransmitFactory};
use radio_sim::{Executor, Msg, RunOpts};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));

    for n in [64usize, 512] {
        let config = Configuration::new(generators::path(n), (0..n as u64).collect()).unwrap();
        let rounds = (n as u64 + 20) * n as u64; // node-rounds metric
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("silent_path", n), &config, |b, config| {
            b.iter(|| {
                Executor::run(config, &SilentFactory { lifetime: 20 }, RunOpts::default())
                    .unwrap()
                    .rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("flood_path", n), &config, |b, config| {
            b.iter(|| {
                Executor::run(
                    config,
                    &WaitThenTransmitFactory {
                        wait: 0,
                        msg: Msg::ONE,
                        lifetime: 20,
                    },
                    RunOpts::default(),
                )
                .unwrap()
                .stats
                .transmissions
            })
        });
    }

    // canonical DRIP on a mid-size feasible configuration
    let config = radio_graph::families::g_m(6);
    let dedicated = anon_radio::solve(&config).unwrap();
    group.bench_function("canonical_G6", |b| {
        b.iter(|| dedicated.execute(RunOpts::default()).unwrap().rounds)
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
