//! Criterion: raw simulator throughput — the E10 companion timing — plus
//! a channel-model comparison on an identical workload (the default model
//! is the regression-watch baseline; the other two price the model layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use radio_graph::{generators, Configuration};
use radio_sim::drip::{SilentFactory, WaitThenTransmitFactory};
use radio_sim::{Executor, ModelKind, Msg, RunOpts};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));

    for n in [64usize, 512] {
        let config = Configuration::new(generators::path(n), (0..n as u64).collect()).unwrap();
        let rounds = (n as u64 + 20) * n as u64; // node-rounds metric
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("silent_path", n), &config, |b, config| {
            b.iter(|| {
                Executor::run(config, &SilentFactory { lifetime: 20 }, RunOpts::default())
                    .unwrap()
                    .rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("flood_path", n), &config, |b, config| {
            b.iter(|| {
                Executor::run(
                    config,
                    &WaitThenTransmitFactory {
                        wait: 0,
                        msg: Msg::ONE,
                        lifetime: 20,
                    },
                    RunOpts::default(),
                )
                .unwrap()
                .stats
                .transmissions
            })
        });
    }

    // canonical DRIP on a mid-size feasible configuration
    let config = radio_graph::families::g_m(6);
    let dedicated = anon_radio::solve(&config).unwrap();
    group.bench_function("canonical_G6", |b| {
        b.iter(|| dedicated.execute(RunOpts::default()).unwrap().rounds)
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));

    // One fixed flood workload per model: identical configuration and
    // DRIP, only the channel semantics vary.
    let n = 256usize;
    let config = Configuration::new(generators::path(n), (0..n as u64).collect()).unwrap();
    let rounds = (n as u64 + 20) * n as u64;
    group.throughput(Throughput::Elements(rounds));
    for model in ModelKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("flood_path_256", model),
            &config,
            |b, config| {
                b.iter(|| {
                    model
                        .run(
                            config,
                            &WaitThenTransmitFactory {
                                wait: 0,
                                msg: Msg::ONE,
                                lifetime: 20,
                            },
                            RunOpts::default(),
                        )
                        .unwrap()
                        .rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_models);
criterion_main!(benches);
