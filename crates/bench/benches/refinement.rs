//! Criterion: the E9 ablation — paper-literal reference engine vs hashed
//! refinement, head to head on the same configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use radio_bench::workloads::with_random_tags;
use radio_classifier::{classify_with, Engine};
use radio_graph::generators;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_ablation");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));
    for n in [32usize, 96] {
        let path = with_random_tags(generators::path(n), 4, 7 ^ n as u64);
        let star = with_random_tags(generators::star(n), 4, 9 ^ n as u64);
        for (name, config) in [("path", &path), ("star", &star)] {
            group.bench_with_input(
                BenchmarkId::new(format!("reference/{name}"), n),
                config,
                |b, config| b.iter(|| classify_with(config, Engine::Reference).iterations),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("fast/{name}"), n),
                config,
                |b, config| b.iter(|| classify_with(config, Engine::Fast).iterations),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
