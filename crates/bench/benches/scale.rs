//! Criterion: the million-node scale path, plus its hard gates.
//!
//! Before any sampling runs, this bench *asserts* the scale-path
//! contract at n = 10⁵:
//!
//! 1. CSR-direct generation ([`FamilySpec::build_csr`]) is ≥ 1.5× faster
//!    than the legacy `Graph` → [`Csr::from_graph`] route, with
//!    byte-identical CSR output (offsets + targets);
//! 2. campaign rows are pinned bit for bit between the two construction
//!    routes: every drawn configuration compares equal and the elect
//!    workload produces identical deterministic row fields.
//!
//! A regression in either trips the assertion and fails `cargo bench
//! --bench scale` outright — the timings below are the diagnostic, not
//! the gate.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use radio_graph::{Csr, FamilySpec};

/// Gate size: large enough that the per-node `to_vec` + sort of the
/// legacy route dominates, small enough to keep the gate under a second.
const GATE_N: usize = 100_000;
const GATE_SPEEDUP: f64 = 1.5;
const GATE_SEED: u64 = 9;

/// One deterministic and one seed-streamed (two-pass count-then-fill)
/// family: the routes differ most where the legacy path materializes
/// adjacency lists it immediately throws away.
const GATE_FAMILIES: [FamilySpec; 2] = [FamilySpec::Path, FamilySpec::RandomTree];

fn best_ns<T>(passes: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        std::hint::black_box(f());
        best = best.min(started.elapsed().as_nanos() as f64);
    }
    best
}

fn gate_generation_speedup() {
    for family in GATE_FAMILIES {
        let direct = family.build_csr(GATE_N, GATE_SEED).unwrap();
        let legacy = Csr::from_graph(&family.build(GATE_N, GATE_SEED).unwrap());
        assert_eq!(
            direct, legacy,
            "{family}: CSR-direct and Graph routes must agree byte for byte"
        );
        let t_direct = best_ns(5, || family.build_csr(GATE_N, GATE_SEED).unwrap());
        let t_legacy = best_ns(5, || {
            Csr::from_graph(&family.build(GATE_N, GATE_SEED).unwrap())
        });
        let speedup = t_legacy / t_direct;
        eprintln!(
            "scale gate: {family} n={GATE_N}: csr-direct {:.2} ms, graph route {:.2} ms — {speedup:.2}×",
            t_direct / 1e6,
            t_legacy / 1e6,
        );
        assert!(
            speedup >= GATE_SPEEDUP,
            "{family}: CSR-direct generation regressed to {speedup:.2}× the legacy \
             route at n={GATE_N} (gate: ≥ {GATE_SPEEDUP}×)"
        );
    }
}

fn gate_rows_bit_for_bit() {
    use radio_bench::campaign::{
        election_metrics, BatchConfig, CacheConfig, CampaignSpec, CampaignWorkspace, Phase,
        TagStrategy,
    };
    use radio_sim::{ModelKind, RunOpts};

    let spec = CampaignSpec {
        phase: Phase::Elect,
        families: vec![
            FamilySpec::Path,
            FamilySpec::Star,
            FamilySpec::RandomTree,
            FamilySpec::Gnp { ppm: None },
        ],
        tags: vec![TagStrategy::Arith { stride: 1 }, TagStrategy::Uniform],
        sizes: vec![16, 33],
        spans: vec![5],
        models: vec![ModelKind::NoCollisionDetection],
        reps: 3,
        seed: 42,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch: BatchConfig::default(),
    };
    spec.validate().expect("gate spec is realizable");
    let mut ws_direct = CampaignWorkspace::new();
    let mut ws_legacy = CampaignWorkspace::new();
    for cell in spec.cells() {
        for rep in 0..spec.reps {
            let direct = spec.configuration(&cell, rep);
            let legacy = spec.configuration_via_graph(&cell, rep);
            assert_eq!(
                direct, legacy,
                "{cell} rep {rep}: construction routes drew different configurations"
            );
            let a = election_metrics(&mut ws_direct, &direct, cell.model, spec.opts);
            let b = election_metrics(&mut ws_legacy, &legacy, cell.model, spec.opts);
            // The deterministic row prefix — everything except the
            // measured tail (wall_ns, mem_hw).
            assert_eq!(
                (
                    a.feasible,
                    a.elected,
                    a.simulated,
                    a.aborted,
                    a.rounds,
                    a.transmissions,
                    a.rounds_stepped,
                    a.rounds_leapt,
                    a.cache_hit,
                    a.cache_miss,
                ),
                (
                    b.feasible,
                    b.elected,
                    b.simulated,
                    b.aborted,
                    b.rounds,
                    b.transmissions,
                    b.rounds_stepped,
                    b.rounds_leapt,
                    b.cache_hit,
                    b.cache_miss,
                ),
                "{cell} rep {rep}: row fields diverge between construction routes"
            );
        }
    }
    eprintln!(
        "scale gate: {} runs bit-identical between CSR-direct and Graph routes",
        spec.total_runs()
    );
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/generate");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500));
    for family in GATE_FAMILIES {
        for n in [10_000usize, 100_000] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/csr_direct"), n),
                &n,
                |b, &n| b.iter(|| family.build_csr(n, GATE_SEED).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/graph_route"), n),
                &n,
                |b, &n| b.iter(|| Csr::from_graph(&family.build(n, GATE_SEED).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_streaming_elect(c: &mut Criterion) {
    use radio_graph::{tags::TagStrategy, Configuration};
    use radio_sim::{ModelKind, RunOpts, SimWorkspace};

    // Full elect pipeline (CSR-direct build → classify+compile →
    // streaming length-only simulation) on a 10⁵-node star: the per-node
    // cost the million-node path scales from.
    let n = 100_000usize;
    let csr = FamilySpec::Star.build_csr(n, GATE_SEED).unwrap();
    let tags = TagStrategy::Extremes.draw(n, 3, &mut radio_util::rng::rng_from(GATE_SEED));
    let config = Configuration::from_csr(csr, tags).unwrap();
    let mut group = c.benchmark_group("scale/elect");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2000));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("star/len_only/100000", |b| {
        let mut sim = SimWorkspace::new();
        b.iter(|| {
            let d = anon_radio::solve(&config).unwrap();
            d.run_in(
                &mut sim,
                ModelKind::NoCollisionDetection,
                RunOpts::default(),
            )
            .unwrap()
            .leader
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_streaming_elect);

fn main() {
    gate_generation_speedup();
    gate_rows_bit_for_bit();
    benches();
}
