//! Bench-facing surface of the campaign layer.
//!
//! The machinery — [`CampaignSpec`], [`CampaignRunner`], streaming
//! per-cell aggregation, the positional seeding contract — lives in
//! [`anon_radio::campaign`] so the `anon-radio campaign` CLI can reach it;
//! this module re-exports it for the experiment harness and adds the
//! spec builders and table renderers the experiments share (E10 ports its
//! batch-throughput sweep onto the runner, E14 its leap-vs-step span
//! grid).

pub use anon_radio::cache::{CacheConfig, CacheStats, ScheduleCache};
pub use anon_radio::campaign::{
    classify_metrics, election_metrics, election_metrics_batched, BatchConfig, CampaignRunner,
    CampaignSpec, CampaignWorkspace, CellAggregate, CellKey, FamilyKind, FamilySpec, Phase,
    RunMetrics, ShardReport, TagStrategy,
};

use radio_sim::{ModelKind, RunOpts};
use radio_util::table::{fmt_f64, Table};

use crate::Effort;

/// The election-campaign spec the harness uses at each effort level: a
/// small multi-family grid under the paper's model, sized so `Quick` runs
/// in CI seconds and `Full` exercises thousands of elections.
pub fn election_spec(effort: Effort, seed: u64) -> CampaignSpec {
    let (sizes, reps) = match effort {
        Effort::Quick => (vec![8, 16], 4),
        Effort::Full => (vec![8, 16, 32], 25),
    };
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![FamilySpec::Path, FamilySpec::Star, FamilySpec::RandomTree],
        tags: vec![TagStrategy::Uniform],
        sizes,
        spans: vec![2, 8],
        models: vec![ModelKind::NoCollisionDetection],
        reps,
        seed,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch: BatchConfig::default(),
    }
}

/// The classify-phase campaign spec the harness uses: a wider grid than
/// the election one (no simulation per run, so classification throughput
/// is the only cost), sweeping the decision phase across families, sizes
/// and spans.
pub fn classify_spec(effort: Effort, seed: u64) -> CampaignSpec {
    let (sizes, reps) = match effort {
        Effort::Quick => (vec![16, 64], 8),
        Effort::Full => (vec![16, 64, 256], 50),
    };
    CampaignSpec {
        phase: Phase::Classify,
        families: vec![
            FamilySpec::Path,
            FamilySpec::Star,
            FamilySpec::Gnp { ppm: None },
        ],
        tags: vec![TagStrategy::Uniform],
        sizes,
        spans: vec![0, 4, 32],
        models: vec![ModelKind::NoCollisionDetection],
        reps,
        seed,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch: BatchConfig::default(),
    }
}

/// Renders a classify-phase runner's aggregates: feasibility rate plus
/// iteration/class/relabel summaries per cell.
pub fn classify_table(title: impl Into<String>, runner: &CampaignRunner) -> Table {
    let mut table = Table::new(
        title,
        &[
            "cell",
            "runs",
            "feasible",
            "iters p50",
            "classes p95",
            "relabels mean",
            "wall µs p50",
        ],
    );
    for (cell, agg) in runner.aggregates() {
        table.push_row(vec![
            format!("{}/{}/n{}/σ{}", cell.family, cell.tags, cell.n, cell.span),
            agg.runs.to_string(),
            agg.feasible.to_string(),
            fmt_f64(agg.iterations.p50().unwrap_or(0.0), 0),
            fmt_f64(agg.classes.p95().unwrap_or(0.0), 0),
            fmt_f64(agg.relabels.mean().unwrap_or(0.0), 0),
            fmt_f64(agg.wall_ns.p50().unwrap_or(0.0) / 1e3, 1),
        ]);
    }
    table
}

/// Renders a runner's per-cell aggregates as an experiment table:
/// feasibility/election rates plus round and wall-time summaries.
pub fn aggregate_table(title: impl Into<String>, runner: &CampaignRunner) -> Table {
    let mut table = Table::new(
        title,
        &[
            "cell",
            "runs",
            "feasible",
            "elected",
            "rounds p50",
            "rounds p95",
            "wall µs p50",
        ],
    );
    for (cell, agg) in runner.aggregates() {
        table.push_row(vec![
            cell.to_string(),
            agg.runs.to_string(),
            agg.feasible.to_string(),
            agg.elected.to_string(),
            fmt_f64(agg.rounds.p50().unwrap_or(0.0), 0),
            fmt_f64(agg.rounds.p95().unwrap_or(0.0), 0),
            fmt_f64(agg.wall_ns.p50().unwrap_or(0.0) / 1e3, 1),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_spec_scales_with_effort() {
        let quick = election_spec(Effort::Quick, 1);
        let full = election_spec(Effort::Full, 1);
        assert!(quick.total_runs() < full.total_runs());
        assert!(quick.total_runs() >= 24, "enough runs to aggregate");
    }

    #[test]
    fn aggregate_table_has_one_row_per_cell() {
        let spec = CampaignSpec {
            phase: Phase::Elect,
            families: vec![FamilySpec::Path],
            tags: vec![TagStrategy::Uniform],
            sizes: vec![5],
            spans: vec![2],
            models: vec![ModelKind::NoCollisionDetection],
            reps: 2,
            seed: 3,
            opts: RunOpts::default(),
            cache: CacheConfig::default(),
            batch: BatchConfig::default(),
        };
        let cells = spec.cells().len();
        let mut runner = CampaignRunner::new(spec, 2);
        runner.run_to_completion(2);
        let table = aggregate_table("t", &runner);
        assert_eq!(table.len(), cells);
    }
}
