//! E9 — ablation for the paper's open problem #1: can the `O(n³Δ)`
//! classifier be improved?
//!
//! The `fast` engine replaces the representative-scan `Refine` with hashed
//! `(old class, label)` refinement — `O(nΔ)` expected per iteration instead
//! of `O(n²Δ)` — while provably (and property-tested) producing the same
//! partitions, numbering, and lists. The table reports wall time of both
//! engines and the speedup; the shape target is a superlinearly growing
//! advantage.

use std::time::Instant;

use radio_classifier::{classify_with, Engine};
use radio_util::table::{fmt_f64, Table};

use crate::workloads::{scaling_families, with_random_tags};
use crate::Effort;

fn time_engine(config: &radio_graph::Configuration, engine: Engine, reps: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let out = classify_with(config, engine);
        std::hint::black_box(out.iterations);
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Runs E9.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let (sizes, reps): (Vec<usize>, u32) = match effort {
        Effort::Quick => (vec![16, 32, 64], 3),
        Effort::Full => (vec![32, 64, 128, 256, 512], 5),
    };

    let mut table = Table::new(
        "E9: Classifier engines — paper-literal vs hash refinement (identical outcomes)",
        &["family", "n", "reference ms", "fast ms", "speedup", "agree"],
    );

    for family in scaling_families().into_iter().filter(|f| f.name != "star") {
        for &n in &sizes {
            let graph = (family.make)(n, seed);
            let real_n = graph.node_count();
            let config = with_random_tags(graph, 4, seed ^ n as u64);
            let r = classify_with(&config, Engine::Reference);
            let f = classify_with(&config, Engine::Fast);
            let agree = r.feasible == f.feasible
                && r.iterations == f.iterations
                && r.records
                    .iter()
                    .zip(&f.records)
                    .all(|(a, b)| a.partition == b.partition && a.labels == b.labels);
            let t_ref = time_engine(&config, Engine::Reference, reps);
            let t_fast = time_engine(&config, Engine::Fast, reps);
            table.push_row(vec![
                family.name.to_string(),
                real_n.to_string(),
                fmt_f64(t_ref, 3),
                fmt_f64(t_fast, 3),
                fmt_f64(t_ref / t_fast.max(1e-9), 2),
                agree.to_string(),
            ]);
        }
    }

    // Where the ablation really matters: G_m takes Θ(n) iterations with
    // Θ(n) classes, so the reference Refine pays Θ(n²Δ) per iteration while
    // the hash engine pays Θ(nΔ) — the gap compounds to ~n× overall.
    let mut adversarial = Table::new(
        "E9 adversarial: G_m (Θ(n) iterations) — where hash refinement wins big",
        &["m", "n", "reference ms", "fast ms", "speedup"],
    );
    let ms: Vec<usize> = match effort {
        Effort::Quick => vec![4, 8, 16],
        Effort::Full => vec![8, 16, 32, 64, 128],
    };
    for m in ms {
        let config = radio_graph::families::g_m(m);
        let t_ref = time_engine(&config, Engine::Reference, reps.min(3));
        let t_fast = time_engine(&config, Engine::Fast, reps.min(3));
        adversarial.push_row(vec![
            m.to_string(),
            config.size().to_string(),
            fmt_f64(t_ref, 3),
            fmt_f64(t_fast, 3),
            fmt_f64(t_ref / t_fast.max(1e-9), 2),
        ]);
    }

    // The star family is where Δ = n−1 makes the reference engine's label
    // comparisons heaviest — a dedicated mini-table.
    let mut star = Table::new(
        "E9 star family (Δ = n−1): worst case for the reference engine",
        &["n", "reference ms", "fast ms", "speedup"],
    );
    for &n in &sizes {
        let config = with_random_tags(radio_graph::generators::star(n), 4, seed ^ n as u64);
        let t_ref = time_engine(&config, Engine::Reference, reps);
        let t_fast = time_engine(&config, Engine::Fast, reps);
        star.push_row(vec![
            n.to_string(),
            fmt_f64(t_ref, 3),
            fmt_f64(t_fast, 3),
            fmt_f64(t_ref / t_fast.max(1e-9), 2),
        ]);
    }

    vec![table, adversarial, star]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_always_agree_in_the_sweep() {
        let tables = run(Effort::Quick, 2);
        let t = &tables[0];
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 5), Some("true"), "row {row}");
        }
    }
}
