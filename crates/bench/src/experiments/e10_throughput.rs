//! E10 — substrate sanity: simulator throughput, parallel batch speedup,
//! and batch-architecture gains.
//!
//! The scaling experiments (E3–E5, E8) lean on the simulator sustaining
//! millions of node-rounds per second and on the batch runner spreading
//! independent runs across cores; the campaign layer additionally leans
//! on per-worker workspace reuse making back-to-back runs allocation-free.
//! This experiment measures all three:
//!
//! * single-run throughput (node-rounds/s) of the canonical DRIP across
//!   configuration sizes;
//! * wall-clock speedup of a batch of independent elections at 1, 2, 4, …
//!   worker threads — each worker owning one long-lived [`SimWorkspace`]
//!   through the worker-scoped [`par_map_init`];
//! * the same election batch through the *old* batch path (fresh engine
//!   state per run, per-item `Mutex` result slots) versus the
//!   workspace-reuse path, plus a declarative campaign executed through
//!   [`CampaignRunner`](crate::campaign::CampaignRunner) with streaming
//!   per-cell aggregation.

use std::time::Instant;

use radio_graph::families;
use radio_sim::parallel::{default_threads, par_map_init, par_map_mutex_baseline};
use radio_sim::SimWorkspace;
use radio_util::table::{fmt_f64, Table};

use crate::campaign::{aggregate_table, election_spec, CampaignRunner};
use crate::workloads::{feasible_with_span, scaling_families};
use crate::Effort;

/// Runs E10.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let sizes: Vec<usize> = match effort {
        Effort::Quick => vec![16, 64],
        Effort::Full => vec![16, 64, 256],
    };

    let mut throughput = Table::new(
        "E10a: canonical-DRIP simulation throughput",
        &["family", "n", "rounds", "wall ms", "node-rounds/s"],
    );
    for family in scaling_families().into_iter().take(3) {
        for &n in &sizes {
            let graph = (family.make)(n, seed);
            let real_n = graph.node_count();
            let config = feasible_with_span(graph, 4, seed ^ n as u64);
            let dedicated = match anon_radio::solve(&config) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let start = Instant::now();
            let ex = dedicated.execute(radio_sim::RunOpts::default()).unwrap();
            let wall = start.elapsed().as_secs_f64();
            let node_rounds = ex.rounds as f64 * real_n as f64;
            throughput.push_row(vec![
                family.name.to_string(),
                real_n.to_string(),
                ex.rounds.to_string(),
                fmt_f64(wall * 1e3, 3),
                fmt_f64(node_rounds / wall.max(1e-12), 0),
            ]);
        }
    }

    // Batch speedup: independent G_m elections across worker threads
    // (each item runs a multi-phase election on 33–65 nodes, heavy enough
    // to amortize thread handoff). Every worker owns one SimWorkspace for
    // its whole share of the batch.
    let batch: Vec<u64> = match effort {
        Effort::Quick => (1..=16u64).collect(),
        Effort::Full => (1..=64u64).collect(),
    };
    let configs: Vec<_> = batch
        .iter()
        .map(|&i| families::g_m(8 + (i % 9) as usize))
        .collect();
    let run_batch = |threads: usize| -> f64 {
        let start = Instant::now();
        let reports = par_map_init(&configs, threads, SimWorkspace::new, |ws, config| {
            anon_radio::elect_leader_in(
                ws,
                config,
                radio_sim::ModelKind::default(),
                radio_sim::RunOpts::default(),
            )
            .expect("G_m feasible")
        });
        std::hint::black_box(reports.len());
        start.elapsed().as_secs_f64() * 1e3
    };

    let mut speedup = Table::new(
        format!(
            "E10b: batch of {} elections — wall time vs worker threads (host has {})",
            configs.len(),
            default_threads()
        ),
        &["threads", "wall ms", "speedup vs 1 thread"],
    );
    let base = run_batch(1);
    let mut threads = 1usize;
    while threads <= default_threads().max(2) {
        let wall = if threads == 1 {
            base
        } else {
            run_batch(threads)
        };
        speedup.push_row(vec![
            threads.to_string(),
            fmt_f64(wall, 2),
            fmt_f64(base / wall.max(1e-9), 2),
        ]);
        threads *= 2;
    }

    // Batch architecture: the same election batch through the pre-campaign
    // path (fresh engine allocations per run, per-item Mutex slots) and
    // the workspace-reuse path, at full parallelism.
    let mut arch = Table::new(
        "E10c: batch architecture — fresh-run/Mutex vs workspace-reuse/chunked",
        &["path", "wall ms", "runs/s"],
    );
    let threads = default_threads();
    let timed_fresh = {
        let start = Instant::now();
        let reports = par_map_mutex_baseline(&configs, threads, |config| {
            anon_radio::elect_leader(config).expect("G_m feasible")
        });
        std::hint::black_box(reports.len());
        start.elapsed().as_secs_f64()
    };
    let timed_reuse = {
        let start = Instant::now();
        let reports = par_map_init(&configs, threads, SimWorkspace::new, |ws, config| {
            anon_radio::elect_leader_in(
                ws,
                config,
                radio_sim::ModelKind::default(),
                radio_sim::RunOpts::default(),
            )
            .expect("G_m feasible")
        });
        std::hint::black_box(reports.len());
        start.elapsed().as_secs_f64()
    };
    for (label, wall) in [
        ("fresh+mutex", timed_fresh),
        ("workspace+chunked", timed_reuse),
    ] {
        arch.push_row(vec![
            label.to_string(),
            fmt_f64(wall * 1e3, 2),
            fmt_f64(configs.len() as f64 / wall.max(1e-9), 0),
        ]);
    }

    // Declarative campaign with streaming aggregation: the E10 sweep
    // expressed as a CampaignSpec and folded shard by shard.
    let mut runner = CampaignRunner::new(election_spec(effort, seed), 4);
    let start = Instant::now();
    runner.run_to_completion(threads);
    let wall = start.elapsed().as_secs_f64();
    let campaign = aggregate_table(
        format!(
            "E10d: campaign of {} elections over {} shards — streaming per-cell aggregates \
             ({:.0} runs/s)",
            runner.spec().total_runs(),
            runner.shard_count(),
            runner.spec().total_runs() as f64 / wall.max(1e-9),
        ),
        &runner,
    );

    vec![throughput, speedup, arch, campaign]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shape() {
        let tables = run(Effort::Quick, 1);
        assert_eq!(tables.len(), 4);
        assert!(tables[0].len() >= 4);
        assert!(tables[1].len() >= 2);
        assert_eq!(tables[2].len(), 2, "fresh vs reuse");
        // one campaign row per grid cell
        let spec = election_spec(Effort::Quick, 1);
        assert_eq!(tables[3].len(), spec.cells().len());
    }
}
