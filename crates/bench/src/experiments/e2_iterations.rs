//! E2 — Corollary 3.3 + Lemma 3.4: `Classifier` exits within `⌈n/2⌉`
//! iterations, and the class count strictly grows until the exit.
//!
//! The sweep reports, per family and size, the iterations used, the proved
//! ceiling, their ratio, and whether monotonicity held (it must — the run
//! asserts it). The `G_m` family realizes the worst case `Θ(n)` of the
//! iteration count up to the constant: `m = (n−1)/4` iterations.

use radio_classifier::classify;
use radio_graph::families;
use radio_util::table::{fmt_f64, Table};

use crate::workloads::scaling_families;
use crate::Effort;

/// Runs E2.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let sizes: Vec<usize> = match effort {
        Effort::Quick => vec![8, 16, 32],
        Effort::Full => vec![16, 32, 64, 128, 256],
    };

    let mut detail = Table::new(
        "E2: Classifier iterations vs the ⌈n/2⌉ ceiling",
        &[
            "family",
            "n",
            "iterations",
            "⌈n/2⌉",
            "ratio",
            "strictly-growing",
        ],
    );

    for family in scaling_families() {
        for &n in &sizes {
            let graph = (family.make)(n, seed);
            let real_n = graph.node_count();
            // Coin-flip tags with span 1: the least informative non-uniform
            // regime, which is what actually induces multi-iteration
            // refinement on structured graphs.
            let config = radio_graph::tags::coin_flip(
                graph,
                1,
                &mut radio_util::rng::rng_from(seed ^ n as u64),
            );
            let outcome = classify(&config);
            let ceiling = real_n.div_ceil(2);
            assert!(
                outcome.iterations <= ceiling,
                "{}: Lemma 3.4 violated",
                family.name
            );
            let counts = outcome.class_counts();
            let strictly = counts[..counts.len().saturating_sub(1)]
                .windows(2)
                .all(|w| w[0] < w[1]);
            assert!(strictly, "{}: Corollary 3.3 violated", family.name);
            detail.push_row(vec![
                family.name.to_string(),
                real_n.to_string(),
                outcome.iterations.to_string(),
                ceiling.to_string(),
                fmt_f64(outcome.iterations as f64 / ceiling as f64, 3),
                strictly.to_string(),
            ]);
        }
    }

    // The adversarial family: G_m forces Θ(n) iterations.
    let mut adversarial = Table::new(
        "E2 adversarial: G_m realizes Θ(n) iterations (m = (n−1)/4)",
        &["m", "n", "iterations", "⌈n/2⌉", "iterations/m"],
    );
    let ms: Vec<usize> = match effort {
        Effort::Quick => vec![2, 4, 8],
        Effort::Full => vec![2, 4, 8, 16, 32, 64],
    };
    for m in ms {
        let config = families::g_m(m);
        let outcome = classify(&config);
        adversarial.push_row(vec![
            m.to_string(),
            config.size().to_string(),
            outcome.iterations.to_string(),
            config.size().div_ceil(2).to_string(),
            fmt_f64(outcome.iterations as f64 / m as f64, 2),
        ]);
    }

    vec![detail, adversarial]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_m_uses_exactly_m_iterations() {
        let tables = run(Effort::Quick, 1);
        let adv = &tables[1];
        for row in 0..adv.len() {
            let ratio: f64 = adv.cell(row, 4).unwrap().parse().unwrap();
            assert_eq!(ratio, 1.0, "G_m must take exactly m iterations");
        }
    }
}
