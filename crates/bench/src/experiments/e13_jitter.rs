//! E13 — wake-up jitter sensitivity (extension).
//!
//! In a deployment, tags are physical power-on times and jitter by a round
//! or two. Feasibility is a property of the *exact* tag vector — so how
//! fragile is it? For feasible base configurations, perturb a single
//! node's tag by ±1 (every node, both directions) and measure
//!
//! * how often the perturbed configuration stays feasible, and
//! * how often it still elects the *same* leader.
//!
//! Shape target: distinct-tag bases are robust (perturbations mostly keep
//! distinctness), while span-1 coin-flip bases are brittle — a single
//! round of jitter frequently lands two neighbours on the same tag and
//! re-symmetrizes the network. Leader *identity* is far more fragile than
//! feasibility in both regimes.

use radio_graph::{tags, Configuration};
use radio_sim::parallel::par_map;
use radio_util::rng::{derive, rng_from};
use radio_util::table::{fmt_f64, Table};

use crate::workloads::scaling_families;
use crate::Effort;

/// All single-node ±1 perturbations of a configuration's tags (clamped at
/// 0, then normalized).
fn perturbations(config: &Configuration) -> Vec<Configuration> {
    let mut out = Vec::new();
    for v in 0..config.size() {
        for delta in [-1i64, 1] {
            let mut tags = config.tags().to_vec();
            let t = tags[v] as i64 + delta;
            if t < 0 {
                continue;
            }
            tags[v] = t as u64;
            out.push(
                Configuration::new(config.graph().clone(), tags)
                    .expect("graph unchanged")
                    .normalize(),
            );
        }
    }
    out
}

/// Runs E13.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let (n, bases_per_cell): (usize, usize) = match effort {
        Effort::Quick => (8, 4),
        Effort::Full => (12, 12),
    };

    let mut table = Table::new(
        format!("E13: single-node ±1 tag jitter on feasible bases (n = {n})"),
        &[
            "family",
            "base tags",
            "bases",
            "perturbations",
            "still feasible",
            "same leader",
        ],
    );

    for family in scaling_families() {
        for regime in ["distinct", "coin σ=1"] {
            let mut total_perturbed = 0usize;
            let mut still_feasible = 0usize;
            let mut same_leader = 0usize;
            let mut bases_used = 0usize;

            for b in 0..bases_per_cell * 4 {
                if bases_used == bases_per_cell {
                    break;
                }
                let cell_seed = derive(seed, &format!("e13/{}/{regime}/{b}", family.name));
                let graph = (family.make)(n, cell_seed);
                let mut rng = rng_from(cell_seed);
                let base = match regime {
                    "distinct" => tags::distinct_shuffled(graph, &mut rng),
                    _ => tags::coin_flip(graph, 1, &mut rng),
                };
                let Ok(dedicated) = anon_radio::solve(&base) else {
                    continue; // need a feasible base
                };
                let base_leader = dedicated.predicted_leader();
                bases_used += 1;

                let variants = perturbations(&base);
                let outcomes = par_map(&variants, |variant| match anon_radio::solve(variant) {
                    Ok(d) => (true, d.predicted_leader() == base_leader),
                    Err(_) => (false, false),
                });
                total_perturbed += outcomes.len();
                still_feasible += outcomes.iter().filter(|&&(f, _)| f).count();
                same_leader += outcomes.iter().filter(|&&(_, s)| s).count();
            }

            if bases_used == 0 {
                continue;
            }
            table.push_row(vec![
                family.name.to_string(),
                regime.to_string(),
                bases_used.to_string(),
                total_perturbed.to_string(),
                fmt_f64(still_feasible as f64 / total_perturbed as f64, 3),
                fmt_f64(same_leader as f64 / total_perturbed as f64, 3),
            ]);
        }
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    #[test]
    fn perturbations_have_expected_count_and_validity() {
        let base = Configuration::new(generators::path(4), vec![0, 1, 2, 3]).unwrap();
        let variants = perturbations(&base);
        // node 0 cannot go below 0 → 2n − 1 variants
        assert_eq!(variants.len(), 7);
        for v in &variants {
            assert!(v.is_normalized());
            assert_eq!(v.size(), 4);
        }
    }

    #[test]
    fn distinct_bases_are_more_robust_than_coin_bases() {
        let tables = run(Effort::Quick, 3);
        let t = &tables[0];
        let mut distinct = Vec::new();
        let mut coin = Vec::new();
        for row in 0..t.len() {
            let frac: f64 = t.cell(row, 4).unwrap().parse().unwrap();
            match t.cell(row, 1) {
                Some("distinct") => distinct.push(frac),
                _ => coin.push(frac),
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        assert!(!distinct.is_empty());
        if !coin.is_empty() {
            assert!(
                mean(&distinct) + 0.10 >= mean(&coin),
                "distinct {:.2} vs coin {:.2}",
                mean(&distinct),
                mean(&coin)
            );
        }
    }
}
