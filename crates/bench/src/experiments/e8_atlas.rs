//! E8 — the feasibility landscape implied by Section 3: how often do
//! topology × wake-up-pattern combinations admit leader election?
//!
//! Shape targets: uniform wake-ups are never feasible for `n ≥ 2` (zero
//! column); feasibility rises with span; distinct wake-up times make
//! almost everything feasible. Trials are distributed over worker threads
//! with `radio-sim`'s parallel batch map.

use radio_graph::{tags, Configuration, Graph};
use radio_sim::parallel::par_map;
use radio_util::rng::{derive, rng_from};
use radio_util::table::{fmt_f64, Table};

use crate::workloads::scaling_families;
use crate::Effort;

fn feasible_fraction(
    make: fn(usize, u64) -> Graph,
    n: usize,
    strategy: &str,
    trials: usize,
    seed: u64,
) -> f64 {
    let jobs: Vec<u64> = (0..trials as u64).collect();
    let outcomes = par_map(&jobs, |&trial| {
        let s = derive(seed, &format!("atlas/{n}/{strategy}/{trial}"));
        let mut rng = rng_from(s);
        let graph = make(n, s);
        let config: Configuration = match strategy {
            "uniform" => tags::uniform(graph, 0),
            "coin σ=1" => tags::coin_flip(graph, 1, &mut rng),
            "random σ=2" => tags::random_in_span(graph, 2, &mut rng),
            "random σ=8" => tags::random_in_span(graph, 8, &mut rng),
            "distinct" => tags::distinct_shuffled(graph, &mut rng),
            other => unreachable!("unknown strategy {other}"),
        };
        radio_classifier::classify(&config).feasible
    });
    outcomes.iter().filter(|&&b| b).count() as f64 / trials as f64
}

/// Runs E8.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let (n, trials) = match effort {
        Effort::Quick => (10usize, 12usize),
        Effort::Full => (16, 100),
    };
    let strategies = [
        "uniform",
        "coin σ=1",
        "random σ=2",
        "random σ=8",
        "distinct",
    ];

    let mut table = Table::new(
        format!("E8: feasible fraction by family × wake-up strategy (n = {n}, {trials} seeds)"),
        &[
            "family",
            strategies[0],
            strategies[1],
            strategies[2],
            strategies[3],
            strategies[4],
        ],
    );

    for family in scaling_families() {
        let mut row = vec![family.name.to_string()];
        for strategy in &strategies {
            let frac = feasible_fraction(family.make, n, strategy, trials, seed);
            row.push(fmt_f64(frac, 2));
        }
        table.push_row(row);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_column_is_zero_and_distinct_is_high() {
        let tables = run(Effort::Quick, 5);
        let t = &tables[0];
        for row in 0..t.len() {
            let uniform: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            assert_eq!(
                uniform, 0.0,
                "row {row}: uniform wake-ups can never be feasible"
            );
            let distinct: f64 = t.cell(row, 5).unwrap().parse().unwrap();
            assert!(
                distinct >= 0.75,
                "row {row}: distinct tags should almost always work"
            );
        }
    }

    #[test]
    fn feasibility_rises_with_span() {
        let tables = run(Effort::Quick, 5);
        let t = &tables[0];
        // aggregate across families: mean(random σ=8) ≥ mean(random σ=2)
        let mean = |col: usize| -> f64 {
            (0..t.len())
                .map(|r| t.cell(r, col).unwrap().parse::<f64>().unwrap())
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(
            mean(4) + 1e-9 >= mean(3),
            "σ=8 should not be less feasible than σ=2"
        );
    }
}
