//! E5 — Lemma 4.2 / Proposition 4.3: the 4-node family `H_m` forces
//! election time `≥ m`, i.e. `Ω(σ)`.
//!
//! The canonical dedicated algorithm completes `H_m` in one phase of
//! `3σ+2` local rounds, so its completion round is `Θ(σ)` — the lower
//! bound is tight up to the constant. The sweep reports the measured
//! completion round, the `m` floor, the ratio (which must stay ≥ 1 and
//! settle near 3), and the log–log slope vs σ (≈ 1).

use radio_graph::families;
use radio_util::stats::loglog_slope;
use radio_util::table::{fmt_f64, Table};

use crate::Effort;

/// Runs E5.
pub fn run(effort: Effort, _seed: u64) -> Vec<Table> {
    let ms: Vec<u64> = match effort {
        Effort::Quick => vec![1, 4, 16, 64],
        Effort::Full => vec![1, 4, 16, 64, 256, 1024, 4096],
    };

    let mut detail = Table::new(
        "E5: H_m (n=4) — completion round vs the Lemma 4.2 floor m",
        &[
            "m",
            "σ",
            "floor m",
            "completion round",
            "completion/σ",
            "b,c divergence",
        ],
    );

    let mut sigmas = Vec::new();
    let mut completions = Vec::new();
    for &m in &ms {
        let config = families::h_m(m);
        let sigma = config.span();
        let dedicated = anon_radio::solve(&config).expect("H_m feasible");
        let report = dedicated.run().expect("elects");
        assert!(report.completion_round >= m, "Lemma 4.2 violated at m={m}");
        let (_, divs) = anon_radio::lower_bounds::canonical_divergences(&config, &[(1, 2)]);
        let div = divs[0].expect("feasible");
        detail.push_row(vec![
            m.to_string(),
            sigma.to_string(),
            m.to_string(),
            report.completion_round.to_string(),
            fmt_f64(report.completion_round as f64 / sigma as f64, 3),
            div.to_string(),
        ]);
        sigmas.push(sigma as f64);
        completions.push(report.completion_round as f64);
    }

    let mut summary = Table::new(
        "E5 summary: log–log slope of completion round vs σ (claim: ≈ 1, i.e. Θ(σ))",
        &["series", "slope", "R²"],
    );
    if let Some(fit) = loglog_slope(&sigmas, &completions) {
        summary.push_row(vec![
            "completion vs σ".into(),
            fmt_f64(fit.slope, 3),
            fmt_f64(fit.r2, 3),
        ]);
    }

    vec![detail, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_scales_linearly_in_sigma() {
        let tables = run(Effort::Quick, 0);
        let slope: f64 = tables[1].cell(0, 1).unwrap().parse().unwrap();
        assert!((0.85..=1.15).contains(&slope), "slope = {slope}");
    }

    #[test]
    fn completion_to_sigma_ratio_is_small_constant() {
        let tables = run(Effort::Quick, 0);
        let t = &tables[0];
        for row in 0..t.len() {
            let ratio: f64 = t.cell(row, 4).unwrap().parse().unwrap();
            assert!(ratio <= 5.0, "row {row}: ratio {ratio}");
        }
    }
}
