//! E12 — the structural-vs-radio gap: Weisfeiler–Leman uniqueness vs
//! `Classifier` feasibility, exhaustively on small configurations.
//!
//! The paper's introduction contrasts wired anonymous networks (where
//! leader election can lean on topological asymmetry alone) with radio
//! networks (where timing must do the work). This experiment quantifies
//! the contrast: over the same exhaustive census as E11, it cross-tabulates
//!
//! * **WL-unique** — some node has a unique 1-WL colour given
//!   `(graph, tags)`: the *structural* symmetry is broken;
//! * **feasible** — `Classifier` says a leader can actually be elected in
//!   the radio model.
//!
//! Shape target: the `feasible ∧ ¬WL-unique` cell is **empty** (structural
//! uniqueness is necessary — histories cannot distinguish what WL cannot),
//! while `WL-unique ∧ infeasible` is heavily populated (collision masking
//! and lock-step wake-ups destroy usable asymmetry; `P_3` with uniform
//! tags is the canonical witness).

use radio_classifier::wl;
use radio_graph::{enumerate, Configuration};
use radio_sim::parallel::par_map;
use radio_util::table::{fmt_f64, Table};

use crate::Effort;

/// Runs E12.
pub fn run(effort: Effort, _seed: u64) -> Vec<Table> {
    let (sizes, max_span): (Vec<usize>, u64) = match effort {
        Effort::Quick => (vec![2, 3, 4], 1),
        Effort::Full => (vec![2, 3, 4, 5], 2),
    };

    let mut contingency = Table::new(
        "E12: WL-uniqueness × radio feasibility over the exhaustive census",
        &[
            "n",
            "configs",
            "feasible & WL-unique",
            "feasible & not-unique",
            "infeasible & WL-unique",
            "infeasible & not-unique",
            "WL-unique share of infeasible",
        ],
    );

    for &n in &sizes {
        let graphs = enumerate::connected_graphs(n);
        let patterns = enumerate::tag_patterns(n, max_span);
        let jobs: Vec<(usize, usize)> = (0..graphs.len())
            .flat_map(|g| (0..patterns.len()).map(move |p| (g, p)))
            .collect();
        let cells = par_map(&jobs, |&(g, p)| {
            let config = Configuration::new(graphs[g].clone(), patterns[p].clone())
                .expect("connected by construction");
            let feasible = radio_classifier::classify(&config).feasible;
            let unique = wl::refine(&config).has_singleton();
            (feasible, unique)
        });
        let count = |f: bool, u: bool| cells.iter().filter(|&&c| c == (f, u)).count();
        let (fu, fn_, iu, in_) = (
            count(true, true),
            count(true, false),
            count(false, true),
            count(false, false),
        );
        assert_eq!(
            fn_, 0,
            "n={n}: found a feasible configuration without a WL-unique node — \
             structural uniqueness should be necessary"
        );
        contingency.push_row(vec![
            n.to_string(),
            jobs.len().to_string(),
            fu.to_string(),
            fn_.to_string(),
            iu.to_string(),
            in_.to_string(),
            fmt_f64(iu as f64 / (iu + in_).max(1) as f64, 3),
        ]);
    }

    // Exemplars of the WL-unique-but-infeasible gap.
    let mut exemplars = Table::new(
        "E12 exemplars: structurally unique yet radio-infeasible",
        &[
            "configuration",
            "WL classes",
            "WL singleton",
            "feasible",
            "why",
        ],
    );
    let p3 = Configuration::with_uniform_tags(radio_graph::generators::path(3), 0).unwrap();
    let star = Configuration::with_uniform_tags(radio_graph::generators::star(4), 0).unwrap();
    let spider =
        Configuration::with_uniform_tags(radio_graph::generators::spider(3, 2), 0).unwrap();
    for (name, config, why) in [
        (
            "P_3, uniform tags",
            &p3,
            "no message is ever heard in lock-step",
        ),
        (
            "star_4, uniform tags",
            &star,
            "centre is unique but always collides",
        ),
        (
            "spider(3,2), uniform",
            &spider,
            "hub unique; legs forever in lock-step",
        ),
    ] {
        let wl_out = wl::refine(config);
        exemplars.push_row(vec![
            name.to_string(),
            wl_out.partition.num_classes().to_string(),
            wl_out.has_singleton().to_string(),
            radio_classifier::classify(config).feasible.to_string(),
            why.to_string(),
        ]);
    }

    vec![contingency, exemplars]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_without_wl_uniqueness_never_happens() {
        // The run() itself asserts the empty cell; this pins the table
        // column too.
        let tables = run(Effort::Quick, 0);
        let t = &tables[0];
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 3), Some("0"), "row {row}");
        }
    }

    #[test]
    fn exemplars_are_all_unique_but_infeasible() {
        let tables = run(Effort::Quick, 0);
        let ex = &tables[1];
        for row in 0..ex.len() {
            assert_eq!(
                ex.cell(row, 2),
                Some("true"),
                "row {row}: WL singleton expected"
            );
            assert_eq!(
                ex.cell(row, 3),
                Some("false"),
                "row {row}: must be infeasible"
            );
        }
    }
}
