//! E14 — time-leap scheduler speedup on silence-dominated workloads.
//!
//! The paper's constructions are almost entirely silence: the patient
//! transform (Lemma 3.12) listens for σ local rounds before acting, and
//! the canonical schedule spends all but `n` rounds per phase listening.
//! Before the event-driven engine these regimes were unreachable at
//! realistic spans — a span-10⁶ configuration spun a million empty loop
//! iterations before the first wake-up. This experiment sweeps the span
//! on both workload shapes and reports, per span, the stepped/leapt round
//! split and the wall-clock of three engines on the identical workload —
//! the naive reference (full per-round rescan), the optimized engine with
//! leaping disabled (`RunOpts::no_leap`), and the leaping engine —
//! asserting along the way that all three produce bit-identical
//! executions. The leaping engine's residual cost is the history
//! materialization itself (the output is Θ(rounds) observations);
//! everything round-proportional in the *loop* is gone.

use std::time::Instant;

use radio_graph::{families, generators, Configuration};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{Execution, PatientFactory, RunOpts};
use radio_util::rng::derive;
use radio_util::table::{fmt_f64, Table};

use crate::campaign::{CampaignRunner, CampaignSpec, FamilyKind};
use crate::workloads::with_random_tags;
use crate::Effort;

/// Times one run under `opts`, returning (execution, wall seconds).
fn timed(
    config: &radio_graph::Configuration,
    factory: &dyn radio_sim::DripFactory,
    opts: RunOpts,
) -> (Execution, f64) {
    let start = Instant::now();
    let ex = radio_sim::Executor::run(config, factory, opts).unwrap();
    (ex, start.elapsed().as_secs_f64())
}

/// Times the naive reference engine (one full scan per round, always).
fn timed_naive(
    config: &radio_graph::Configuration,
    factory: &dyn radio_sim::DripFactory,
) -> (Execution, f64) {
    let start = Instant::now();
    let ex = radio_sim::engine_ref::run_reference(config, factory, RunOpts::default()).unwrap();
    (ex, start.elapsed().as_secs_f64())
}

fn assert_identical(leap: &Execution, other: &Execution, what: &str) {
    assert_eq!(leap.histories, other.histories, "{what}: histories");
    assert_eq!(leap.wake_round, other.wake_round, "{what}: wake rounds");
    assert_eq!(leap.done_round, other.done_round, "{what}: done rounds");
    assert_eq!(leap.stats, other.stats, "{what}: stats");
    assert_eq!(leap.rounds, other.rounds, "{what}: round count");
}

fn push_comparison_row(
    table: &mut Table,
    label: String,
    leap: (Execution, f64),
    step_wall: f64,
    naive_wall: f64,
) {
    let (ex, leap_wall) = leap;
    table.push_row(vec![
        label,
        ex.rounds.to_string(),
        ex.rounds_stepped.to_string(),
        ex.rounds_leapt.to_string(),
        fmt_f64(naive_wall * 1e3, 3),
        fmt_f64(step_wall * 1e3, 3),
        fmt_f64(leap_wall * 1e3, 3),
        fmt_f64(step_wall / leap_wall.max(1e-9), 1),
        fmt_f64(naive_wall / leap_wall.max(1e-9), 1),
    ]);
}

const COLUMNS: [&str; 9] = [
    "span σ", "rounds", "stepped", "leapt", "naive ms", "step ms", "leap ms", "vs step", "vs naive",
];

/// Runs E14.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let spans: Vec<u64> = match effort {
        Effort::Quick => vec![1_000, 10_000],
        Effort::Full => vec![10_000, 100_000, 1_000_000],
    };

    // Workload 1: duty-cycled wake bursts. Leaf pairs of a star wake
    // together, transmit simultaneously — a collision at the sleeping
    // centre, which therefore sleeps on — and terminate; between bursts
    // the whole network is asleep. Histories stay O(n · lifetime) while
    // the simulated span grows without bound: the regime where the
    // event-driven engine fully decouples wall-clock from rounds (the
    // round-driven engines pay Θ(σ · n) regardless).
    let mut bursts = Table::new(
        "E14a: duty-cycled wake bursts on a star — naive vs step vs leap",
        &COLUMNS,
    );
    for &span in &spans {
        let pairs = 12u64;
        let mut tags = vec![span]; // the centre wakes long after the last burst
        for p in 0..pairs {
            let t = p * (span / pairs);
            tags.extend([t, t]);
        }
        let config =
            Configuration::new(generators::star(tags.len()), tags).expect("star is connected");
        let factory = WaitThenTransmitFactory {
            wait: 2,
            msg: radio_sim::Msg::ONE,
            lifetime: 16,
        };
        let naive = timed_naive(&config, &factory);
        let step = timed(&config, &factory, RunOpts::default().no_leap());
        let leap = timed(&config, &factory, RunOpts::default());
        assert_identical(&leap.0, &step.0, "bursts step");
        assert_identical(&leap.0, &naive.0, "bursts naive");
        push_comparison_row(&mut bursts, span.to_string(), leap, step.1, naive.1);
    }

    // Workload 2: patient-wrapped wait-then-transmit on a path with random
    // tags in 0..=σ — the Lemma 3.12 regime. Every node listens through a
    // σ-round window before the inner DRIP may act; here the *output*
    // (every node's σ-long history) is itself Θ(rounds), so the leap
    // engine's win is bounded by the materialization floor all engines
    // share.
    let mut patient = Table::new(
        "E14b: patient transform (Lemma 3.12) — naive vs step vs leap",
        &COLUMNS,
    );
    for &span in &spans {
        let config = with_random_tags(generators::path(6), span, derive(seed, "e14a"));
        let factory = PatientFactory::new(
            WaitThenTransmitFactory {
                wait: 1,
                msg: radio_sim::Msg::ONE,
                lifetime: 12,
            },
            config.span(),
        );
        let naive = timed_naive(&config, &factory);
        let step = timed(&config, &factory, RunOpts::default().no_leap());
        let leap = timed(&config, &factory, RunOpts::default());
        assert_identical(&leap.0, &step.0, "patient step");
        assert_identical(&leap.0, &naive.0, "patient naive");
        push_comparison_row(&mut patient, span.to_string(), leap, step.1, naive.1);
    }

    // Workload 3: the compiled canonical schedule on H_m (n = 4, σ = m+1)
    // — Θ(σ) schedule rounds with a handful of transmissions. The DRIP
    // advertises its timetable via `quiet_until`, so the leaping engine
    // executes only the eventful rounds.
    let mut canonical = Table::new(
        "E14c: canonical dedicated schedule on H_m — naive vs step vs leap",
        &COLUMNS,
    );
    for &span in &spans {
        let config = families::h_m(span - 1); // σ = span
        let dedicated = anon_radio::solve(&config).expect("H_m is feasible");
        let factory = dedicated.factory();
        let naive = timed_naive(&config, &factory);
        let step = timed(&config, &factory, RunOpts::default().no_leap());
        let leap = timed(&config, &factory, RunOpts::default());
        assert_identical(&leap.0, &step.0, "canonical step");
        assert_identical(&leap.0, &naive.0, "canonical naive");
        push_comparison_row(&mut canonical, span.to_string(), leap, step.1, naive.1);
    }

    // Workload 4: the same leap-vs-step comparison as a declarative
    // campaign — the E14 sweep ported onto the campaign runner. Two
    // runners execute the identical grid (same positional seeds, so the
    // drawn configurations match cell for cell), one with the time-leap
    // scheduler and one without; per-cell streaming aggregates replace
    // the hand-rolled per-span loop. The stepped/leapt split is the
    // deterministic signal; the wall-time ratio is the measured one.
    let campaign_spans: Vec<u64> = match effort {
        Effort::Quick => vec![1_000, 10_000],
        Effort::Full => vec![10_000, 100_000],
    };
    let spec = CampaignSpec {
        phase: crate::campaign::Phase::Elect,
        families: vec![FamilyKind::Path.spec()],
        tags: vec![crate::campaign::TagStrategy::Uniform],
        sizes: vec![4],
        spans: campaign_spans,
        models: vec![radio_sim::ModelKind::NoCollisionDetection],
        reps: 2,
        seed,
        opts: RunOpts::default(),
        cache: crate::campaign::CacheConfig::default(),
        batch: crate::campaign::BatchConfig::default(),
    };
    let leap_spec = spec.clone();
    let mut step_spec = spec;
    step_spec.opts = RunOpts::default().no_leap();

    let mut leap_runner = CampaignRunner::new(leap_spec, 2);
    leap_runner.run_to_completion(2);
    let mut step_runner = CampaignRunner::new(step_spec, 2);
    step_runner.run_to_completion(2);

    let mut campaign = Table::new(
        "E14d: leap vs step across the span grid — campaign aggregation",
        &[
            "cell",
            "rounds p50",
            "stepped p50 (leap)",
            "leapt p50 (leap)",
            "step wall µs p50",
            "leap wall µs p50",
            "wall ratio",
        ],
    );
    for ((cell, leap_agg), (_, step_agg)) in leap_runner.aggregates().zip(step_runner.aggregates())
    {
        assert_eq!(
            leap_agg.rounds.p50(),
            step_agg.rounds.p50(),
            "leap and step campaigns simulate identical executions"
        );
        let step_wall = step_agg.wall_ns.p50().unwrap_or(0.0);
        let leap_wall = leap_agg.wall_ns.p50().unwrap_or(0.0);
        campaign.push_row(vec![
            cell.to_string(),
            fmt_f64(leap_agg.rounds.p50().unwrap_or(0.0), 0),
            fmt_f64(leap_agg.stepped.p50().unwrap_or(0.0), 0),
            fmt_f64(leap_agg.leapt.p50().unwrap_or(0.0), 0),
            fmt_f64(step_wall / 1e3, 1),
            fmt_f64(leap_wall / 1e3, 1),
            fmt_f64(step_wall / leap_wall.max(1.0), 1),
        ]);
    }

    vec![bursts, patient, canonical, campaign]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shape() {
        let tables = run(Effort::Quick, 3);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.len(), 2, "one row per span (cell)");
        }
    }

    #[test]
    fn burst_workload_is_event_bound() {
        // Deterministic proxy for the wall-clock table: at span 10⁶ the
        // burst workload has ~12 bursts of a handful of eventful rounds
        // each — the leap engine must step O(bursts), not O(span).
        let span = 1_000_000u64;
        let mut tags = vec![span];
        for p in 0..12u64 {
            tags.extend([p * (span / 12), p * (span / 12)]);
        }
        let config = Configuration::new(generators::star(tags.len()), tags).unwrap();
        let factory = WaitThenTransmitFactory {
            wait: 2,
            msg: radio_sim::Msg::ONE,
            lifetime: 16,
        };
        let ex = radio_sim::Executor::run(&config, &factory, RunOpts::default()).unwrap();
        assert!(ex.rounds > span, "the centre wakes only at {span}");
        assert_eq!(ex.stats.transmissions, 25, "two per burst, one centre");
        assert!(
            ex.rounds_stepped < 128,
            "stepped {} of {} rounds",
            ex.rounds_stepped,
            ex.rounds
        );
    }

    #[test]
    fn leap_engine_steps_a_tiny_fraction() {
        // Not a wall-clock assertion (timers are noisy in CI) — the
        // stepped/leapt split is the deterministic proxy: at span 10⁴ the
        // leaping engine must execute well under 1% of the rounds.
        let config = with_random_tags(generators::path(6), 10_000, derive(3, "e14a"));
        let factory = PatientFactory::new(
            WaitThenTransmitFactory {
                wait: 1,
                msg: radio_sim::Msg::ONE,
                lifetime: 12,
            },
            config.span(),
        );
        let ex = radio_sim::Executor::run(&config, &factory, RunOpts::default()).unwrap();
        assert!(ex.rounds > config.span(), "whole σ window is simulated");
        assert!(
            ex.rounds_stepped * 100 < ex.rounds,
            "stepped {} of {}",
            ex.rounds_stepped,
            ex.rounds
        );
    }
}
