//! E1 — Theorem 3.17 / Lemma 3.5: `Classifier` decides feasibility in
//! `O(n³Δ)` elementary steps.
//!
//! We run the *reference* (paper-literal, instrumented) engine across graph
//! families and sizes, reporting measured steps, the normalized ratio
//! `steps / (n³Δ)` (which must stay bounded if the bound is right), and the
//! log–log slope of steps vs `n` per family (which must stay below 3 on
//! fixed-degree families — in practice far below, since the `⌈n/2⌉`
//! iteration worst case is rarely realized).
//!
//! The throughput side (open problem #1's practical face) is measured on
//! the worker-scoped API: a batch of repeated classifications through the
//! per-run fresh eager path versus per-worker recycled
//! [`ClassifierWorkspace`]s (E1b), plus the same sweep expressed as a
//! declarative `--phase classify` campaign (E1c).

use std::time::Instant;

use radio_classifier::{classify_with, ClassifierWorkspace, Engine};
use radio_graph::Configuration;
use radio_sim::parallel::{default_threads, par_map_init};
use radio_util::stats::loglog_slope;
use radio_util::table::{fmt_f64, Table};

use crate::campaign::{classify_spec, classify_table, CampaignRunner};
use crate::workloads::{scaling_families, with_random_tags};
use crate::Effort;

/// Runs E1.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let sizes: Vec<usize> = match effort {
        Effort::Quick => vec![8, 16, 32],
        Effort::Full => vec![16, 32, 64, 128, 256],
    };
    let span = 4u64;

    let mut detail = Table::new(
        format!("E1: Classifier (reference engine) steps vs the n³Δ budget (span {span})"),
        &["family", "n", "Δ", "iters", "steps", "steps/(n³Δ)"],
    );
    let mut slopes = Table::new(
        "E1 summary: log–log slope of steps vs n per family (claim: ≤ 3 for fixed Δ)",
        &["family", "slope", "R²"],
    );

    for family in scaling_families() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &sizes {
            let graph = (family.make)(n, seed);
            let real_n = graph.node_count();
            let config = with_random_tags(graph, span, seed ^ n as u64);
            let delta = config.max_degree();
            let outcome = classify_with(&config, Engine::Reference);
            let steps = outcome.cost.total();
            let budget = (real_n as f64).powi(3) * delta as f64;
            detail.push_row(vec![
                family.name.to_string(),
                real_n.to_string(),
                delta.to_string(),
                outcome.iterations.to_string(),
                steps.to_string(),
                fmt_f64(steps as f64 / budget, 5),
            ]);
            xs.push(real_n as f64);
            ys.push(steps as f64);
        }
        if let Some(fit) = loglog_slope(&xs, &ys) {
            slopes.push_row(vec![
                family.name.to_string(),
                fmt_f64(fit.slope, 3),
                fmt_f64(fit.r2, 3),
            ]);
        }
    }

    // Adversarial case: random tags split everything in one iteration, so
    // the sweep above never stresses the ⌈n/2⌉-iterations dimension of the
    // bound. G_m does: Θ(n) iterations with growing class counts, the
    // regime where the reference engine's cost actually approaches cubic.
    let mut adversarial = Table::new(
        "E1 adversarial: G_m (Θ(n) iterations) — steps approach the cubic regime",
        &["m", "n", "iters", "steps", "steps/(n³Δ)"],
    );
    let ms: Vec<usize> = match effort {
        Effort::Quick => vec![2, 4, 8],
        Effort::Full => vec![2, 4, 8, 16, 32, 64],
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for m in ms {
        let config = radio_graph::families::g_m(m);
        let n = config.size();
        let outcome = classify_with(&config, Engine::Reference);
        let steps = outcome.cost.total();
        adversarial.push_row(vec![
            m.to_string(),
            n.to_string(),
            outcome.iterations.to_string(),
            steps.to_string(),
            fmt_f64(steps as f64 / ((n as f64).powi(3) * 2.0), 5),
        ]);
        xs.push(n as f64);
        ys.push(steps as f64);
    }
    if let Some(fit) = loglog_slope(&xs, &ys) {
        slopes.push_row(vec![
            "G_m (adversarial)".to_string(),
            fmt_f64(fit.slope, 3),
            fmt_f64(fit.r2, 3),
        ]);
    }

    // E1b: repeated classification on the worker-scoped API — per-run
    // fresh state (the eager `classify` path: fresh refine buffers, a
    // `Vec<Label>` and two partition clones per iteration) versus one
    // recycled ClassifierWorkspace per worker (interned labels,
    // incremental worklist, record-free). Same batch, same threads.
    let batch_n = match effort {
        Effort::Quick => 128usize,
        Effort::Full => 512,
    };
    let batch: Vec<Configuration> = scaling_families()
        .into_iter()
        .flat_map(|family| {
            (0..4u64).map(move |i| {
                let graph = (family.make)(batch_n, seed ^ i);
                with_random_tags(graph, 8, seed ^ (i << 8) ^ batch_n as u64)
            })
        })
        .collect();
    let threads = default_threads();
    let timed_fresh = {
        let start = Instant::now();
        let verdicts = par_map_init(
            &batch,
            threads,
            || (),
            |_, config| radio_classifier::classify(config).feasible,
        );
        std::hint::black_box(verdicts.len());
        start.elapsed().as_secs_f64()
    };
    let timed_reuse = {
        let start = Instant::now();
        let verdicts = par_map_init(&batch, threads, ClassifierWorkspace::new, |ws, config| {
            ws.summarize_in(config).feasible
        });
        std::hint::black_box(verdicts.len());
        start.elapsed().as_secs_f64()
    };
    let mut reuse = Table::new(
        format!(
            "E1b: repeated classification of {} configs (n = {batch_n}) — fresh eager state \
             per run vs per-worker recycled ClassifierWorkspace ({threads} threads)",
            batch.len()
        ),
        &["path", "wall ms", "runs/s", "speedup"],
    );
    for (label, wall) in [
        ("fresh+records", timed_fresh),
        ("workspace+summary", timed_reuse),
    ] {
        reuse.push_row(vec![
            label.to_string(),
            fmt_f64(wall * 1e3, 2),
            fmt_f64(batch.len() as f64 / wall.max(1e-9), 0),
            fmt_f64(timed_fresh / wall.max(1e-9), 2),
        ]);
    }

    // E1c: the classify-phase campaign — the same decision workload as a
    // declarative family × n × span grid with streaming per-cell
    // aggregates (feasible rate, iterations, classes, relabel work).
    let mut runner = CampaignRunner::new(classify_spec(effort, seed), 4);
    let start = Instant::now();
    runner.run_to_completion(threads);
    let wall = start.elapsed().as_secs_f64();
    let campaign = classify_table(
        format!(
            "E1c: classify-phase campaign of {} runs over {} shards ({:.0} runs/s)",
            runner.spec().total_runs(),
            runner.shard_count(),
            runner.spec().total_runs() as f64 / wall.max(1e-9),
        ),
        &runner,
    );

    vec![detail, adversarial, slopes, reuse, campaign]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stay_bounded() {
        let tables = run(Effort::Quick, 3);
        let detail = &tables[0];
        for row in 0..detail.len() {
            let ratio: f64 = detail.cell(row, 5).unwrap().parse().unwrap();
            assert!(
                ratio <= 8.0,
                "row {row}: steps exceeded 8×n³Δ (ratio {ratio})"
            );
        }
    }

    #[test]
    fn slopes_below_cubic() {
        let tables = run(Effort::Quick, 3);
        let slopes = &tables[2];
        for row in 0..slopes.len() {
            let slope: f64 = slopes.cell(row, 1).unwrap().parse().unwrap();
            assert!(
                slope <= 3.3,
                "family {:?} slope {slope}",
                slopes.cell(row, 0)
            );
        }
    }

    #[test]
    fn adversarial_ratio_still_within_budget() {
        let tables = run(Effort::Quick, 3);
        let adv = &tables[1];
        for row in 0..adv.len() {
            let ratio: f64 = adv.cell(row, 4).unwrap().parse().unwrap();
            assert!(ratio <= 8.0, "row {row}: ratio {ratio}");
        }
    }

    #[test]
    fn throughput_tables_have_expected_shape() {
        let tables = run(Effort::Quick, 3);
        assert_eq!(tables.len(), 5);
        let reuse = &tables[3];
        assert_eq!(reuse.len(), 2, "fresh vs reuse");
        // wall times are positive; no speedup assertion here (CI timing is
        // noisy — benches/classify.rs is the measured claim)
        for row in 0..reuse.len() {
            let wall: f64 = reuse.cell(row, 1).unwrap().parse().unwrap();
            assert!(wall > 0.0);
        }
        let campaign = &tables[4];
        let spec = classify_spec(Effort::Quick, 3);
        assert_eq!(campaign.len(), spec.cells().len());
    }
}
