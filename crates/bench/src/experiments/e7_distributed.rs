//! E7 — Proposition 4.5: feasibility cannot be decided by a distributed
//! algorithm.
//!
//! For a spread of probe DRIPs (including the paper's own canonical DRIP
//! compiled for `H_3`), the experiment shows that every node's history on
//! the feasible `H_{t+1}` is byte-identical to its history on the
//! infeasible `S_{t+1}` — so no history-based verdict can separate them.

use anon_radio::distributed::refute_distributed_decision;
use radio_graph::families;
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{DripFactory, Msg};
use radio_util::table::Table;

use crate::Effort;

/// Runs E7.
pub fn run(_effort: Effort, _seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E7: H_{t+1} vs S_{t+1} — per-node history equality under probe DRIPs",
        &[
            "probe DRIP",
            "t",
            "pair",
            "H feasible",
            "S feasible",
            "identical histories",
        ],
    );

    let mut probes: Vec<Box<dyn DripFactory>> = vec![
        Box::new(WaitThenTransmitFactory {
            wait: 0,
            msg: Msg::ONE,
            lifetime: 12,
        }),
        Box::new(WaitThenTransmitFactory {
            wait: 3,
            msg: Msg::ONE,
            lifetime: 16,
        }),
        Box::new(WaitThenTransmitFactory {
            wait: 9,
            msg: Msg::ONE,
            lifetime: 24,
        }),
    ];
    let dedicated = anon_radio::solve(&families::h_m(3)).expect("H_3 feasible");
    probes.push(Box::new(dedicated.factory()));

    for probe in &probes {
        let refutation =
            refute_distributed_decision(probe.as_ref(), 10_000).expect("probes transmit");
        assert!(refutation.is_conclusive());
        let identical = refutation
            .histories_identical
            .iter()
            .filter(|&&b| b)
            .count();
        table.push_row(vec![
            probe.name(),
            refutation.t.to_string(),
            format!("H_{} vs S_{}", refutation.m, refutation.m),
            refutation.h_feasible.to_string(),
            refutation.s_feasible.to_string(),
            format!("{identical}/4"),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_probes_show_total_indistinguishability() {
        let tables = run(Effort::Quick, 0);
        let t = &tables[0];
        assert_eq!(t.len(), 4);
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 5), Some("4/4"), "row {row}");
            assert_eq!(t.cell(row, 3), Some("true"));
            assert_eq!(t.cell(row, 4), Some("false"));
        }
    }
}
