//! E3 — Theorem 3.15 / Lemma 3.10: the dedicated algorithm elects a leader
//! within `O(n²σ)` rounds.
//!
//! For feasible configurations across families, sizes and spans, the sweep
//! reports the canonical DRIP's actual termination round (local), the
//! concrete bound `⌈n/2⌉·(n(2σ+1)+σ)+1` from Lemma 3.10, and their ratio —
//! which must never exceed 1 and in practice sits far below (few phases,
//! few classes).

use radio_util::table::{fmt_f64, Table};

use crate::workloads::{feasible_with_span, scaling_families};
use crate::Effort;

/// The concrete Lemma 3.10 budget.
pub fn lemma_3_10_bound(n: u64, sigma: u64) -> u64 {
    n.div_ceil(2) * (n * (2 * sigma + 1) + sigma) + 1
}

/// Runs E3.
pub fn run(effort: Effort, seed: u64) -> Vec<Table> {
    let (sizes, spans): (Vec<usize>, Vec<u64>) = match effort {
        Effort::Quick => (vec![4, 8, 16], vec![1, 4]),
        Effort::Full => (vec![8, 16, 32, 64], vec![1, 4, 16]),
    };

    let mut detail = Table::new(
        "E3: canonical DRIP termination round vs the Lemma 3.10 budget",
        &[
            "family",
            "n",
            "σ",
            "phases",
            "rounds",
            "budget",
            "rounds/budget",
        ],
    );

    for family in scaling_families() {
        for &n in &sizes {
            for &span in &spans {
                let graph = (family.make)(n, seed);
                let real_n = graph.node_count() as u64;
                let config = feasible_with_span(graph, span, seed ^ (n as u64) ^ (span << 32));
                let sigma = config.span();
                let dedicated = match anon_radio::solve(&config) {
                    Ok(d) => d,
                    Err(_) => continue, // extremely unlikely after retries
                };
                let report = dedicated.run().expect("dedicated elections succeed");
                let budget = lemma_3_10_bound(real_n, sigma);
                assert!(
                    report.rounds_local <= budget,
                    "{}: bound violated",
                    family.name
                );
                detail.push_row(vec![
                    family.name.to_string(),
                    real_n.to_string(),
                    sigma.to_string(),
                    report.phases.to_string(),
                    report.rounds_local.to_string(),
                    budget.to_string(),
                    fmt_f64(report.rounds_local as f64 / budget as f64, 4),
                ]);
            }
        }
    }

    vec![detail]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula_matches_lemma() {
        // n=4, σ=3: ⌈2⌉ * (4·7+3) + 1 = 2·31+1 = 63
        assert_eq!(lemma_3_10_bound(4, 3), 63);
    }

    #[test]
    fn all_ratios_at_most_one() {
        let tables = run(Effort::Quick, 11);
        let t = &tables[0];
        assert!(t.len() > 10, "sweep should cover most cells");
        for row in 0..t.len() {
            let ratio: f64 = t.cell(row, 6).unwrap().parse().unwrap();
            assert!(ratio <= 1.0, "row {row}");
        }
    }
}
