//! E6 — Proposition 4.4: no universal leader-election algorithm exists,
//! even for 4-node feasible configurations.
//!
//! For every candidate in the gallery: find its silence-breaking round
//! `t`, verify it *does* solve election on a control configuration (no
//! strawmen), then exhibit its failure on the feasible `H_{t+1}`.

use anon_radio::universal::{gallery, refute_universal, works_on, Refutation};
use radio_graph::{families, generators, Configuration};
use radio_util::table::Table;

use crate::Effort;

/// Runs E6.
pub fn run(_effort: Effort, _seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E6: the universal-candidate gallery, refuted one by one",
        &[
            "candidate",
            "works somewhere",
            "t",
            "failing config",
            "feasible?",
            "leaders",
            "H_a=H_d",
            "H_b=H_c",
        ],
    );

    let control = Configuration::new(generators::path(2), vec![0, 7]).unwrap();
    for candidate in gallery() {
        let control_cfg = if candidate.name == "dedicated-H1-misused" {
            families::h_m(1)
        } else {
            control.clone()
        };
        let sane = works_on(&candidate, &control_cfg);
        match refute_universal(&candidate, 10_000) {
            Refutation::FailsOn {
                t,
                m,
                leaders,
                symmetric_pairs,
            } => {
                assert_ne!(leaders.len(), 1, "{}", candidate.name);
                table.push_row(vec![
                    candidate.name.clone(),
                    sane.to_string(),
                    t.to_string(),
                    format!("H_{m}"),
                    radio_classifier::classify(&families::h_m(m))
                        .feasible
                        .to_string(),
                    format!("{} {:?}", leaders.len(), leaders),
                    symmetric_pairs[0].to_string(),
                    symmetric_pairs[1].to_string(),
                ]);
            }
            Refutation::NeverTransmits { probed_rounds } => {
                table.push_row(vec![
                    candidate.name.clone(),
                    sane.to_string(),
                    "-".into(),
                    format!("silent for {probed_rounds} rounds"),
                    "-".into(),
                    "cannot communicate at all".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_candidates_work_somewhere_and_fail_universally() {
        let tables = run(Effort::Quick, 0);
        let t = &tables[0];
        assert!(t.len() >= 6);
        for row in 0..t.len() {
            assert_eq!(
                t.cell(row, 1),
                Some("true"),
                "row {row}: strawman candidate"
            );
            assert_eq!(
                t.cell(row, 4),
                Some("true"),
                "row {row}: counterexample infeasible"
            );
        }
    }
}
