//! One module per experiment; see the crate docs for the index.

pub mod e10_throughput;
pub mod e11_census;
pub mod e12_wl_gap;
pub mod e13_jitter;
pub mod e14_time_leap;
pub mod e1_classifier_scaling;
pub mod e2_iterations;
pub mod e3_election_time;
pub mod e4_omega_n;
pub mod e5_omega_sigma;
pub mod e6_universal;
pub mod e7_distributed;
pub mod e8_atlas;
pub mod e9_ablation;
