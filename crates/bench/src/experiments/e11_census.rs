//! E11 — exhaustive census of small configurations.
//!
//! Brute-forces **every** connected labelled graph on `n ≤ 5` nodes with
//! **every** normalized tag pattern up to a span bound, answering
//! questions the paper leaves implicit:
//!
//! * what fraction of small configurations is feasible, and how does it
//!   grow with span?
//! * is every configuration with pairwise-*distinct* tags feasible?
//!   (Exhaustively verified for n ≤ 5: **yes** — distinct wake-up times
//!   break every symmetry the radio model can't.)

use radio_graph::{enumerate, Configuration};
use radio_sim::parallel::par_map;
use radio_util::table::{fmt_f64, Table};

use crate::Effort;

/// Runs E11.
pub fn run(effort: Effort, _seed: u64) -> Vec<Table> {
    let (sizes, max_span): (Vec<usize>, u64) = match effort {
        Effort::Quick => (vec![2, 3, 4], 2),
        Effort::Full => (vec![2, 3, 4, 5], 3),
    };

    // Census over span buckets: every (graph, normalized tags ≤ span).
    let mut census = Table::new(
        "E11: exhaustive feasibility census (all connected labelled graphs × all normalized tag patterns)",
        &["n", "graphs", "span", "configs", "feasible", "fraction"],
    );
    for &n in &sizes {
        let graphs = enumerate::connected_graphs(n);
        for span in 1..=max_span {
            // patterns with span exactly ≤ span; bucket by max tag = span
            // to show the marginal effect of more timing freedom.
            let patterns: Vec<Vec<u64>> = enumerate::tag_patterns(n, span)
                .into_iter()
                .filter(|tags| tags.iter().copied().max().unwrap() == span)
                .collect();
            let jobs: Vec<(usize, usize)> = (0..graphs.len())
                .flat_map(|g| (0..patterns.len()).map(move |p| (g, p)))
                .collect();
            let feasible: usize = par_map(&jobs, |&(g, p)| {
                let config = Configuration::new(graphs[g].clone(), patterns[p].clone())
                    .expect("connected by construction");
                radio_classifier::classify(&config).feasible as usize
            })
            .into_iter()
            .sum();
            let total = jobs.len();
            census.push_row(vec![
                n.to_string(),
                graphs.len().to_string(),
                span.to_string(),
                total.to_string(),
                feasible.to_string(),
                fmt_f64(feasible as f64 / total as f64, 4),
            ]);
        }
    }

    // Distinct-tags census: are ALL of them feasible?
    let mut distinct = Table::new(
        "E11 distinct tags: exhaustive check that pairwise-distinct wake-ups are always feasible",
        &[
            "n",
            "graphs",
            "tag perms",
            "configs",
            "infeasible",
            "all feasible",
        ],
    );
    for &n in &sizes {
        let graphs = enumerate::connected_graphs(n);
        let patterns = enumerate::distinct_tag_patterns(n);
        let jobs: Vec<(usize, usize)> = (0..graphs.len())
            .flat_map(|g| (0..patterns.len()).map(move |p| (g, p)))
            .collect();
        let infeasible: usize = par_map(&jobs, |&(g, p)| {
            let config = Configuration::new(graphs[g].clone(), patterns[p].clone())
                .expect("connected by construction");
            (!radio_classifier::classify(&config).feasible) as usize
        })
        .into_iter()
        .sum();
        distinct.push_row(vec![
            n.to_string(),
            graphs.len().to_string(),
            patterns.len().to_string(),
            jobs.len().to_string(),
            infeasible.to_string(),
            (infeasible == 0).to_string(),
        ]);
    }

    vec![census, distinct]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tags_always_feasible_up_to_4() {
        let tables = run(Effort::Quick, 0);
        let distinct = &tables[1];
        for row in 0..distinct.len() {
            assert_eq!(
                distinct.cell(row, 5),
                Some("true"),
                "row {row}: found an infeasible distinct-tag configuration!"
            );
        }
    }

    #[test]
    fn feasibility_fraction_grows_with_span() {
        let tables = run(Effort::Quick, 0);
        let census = &tables[0];
        // for n=4 rows, fraction at span 2 ≥ fraction at span 1
        let mut n4: Vec<(u64, f64)> = Vec::new();
        for row in 0..census.len() {
            if census.cell(row, 0) == Some("4") {
                n4.push((
                    census.cell(row, 2).unwrap().parse().unwrap(),
                    census.cell(row, 5).unwrap().parse().unwrap(),
                ));
            }
        }
        n4.sort_by_key(|&(s, _)| s);
        assert!(n4.len() >= 2);
        assert!(
            n4[1].1 >= n4[0].1 - 0.05,
            "fraction should not collapse with span: {n4:?}"
        );
    }
}
