//! E4 — Proposition 4.1: the feasible span-1 family `G_m` (n = 4m+1)
//! forces `Ω(n)` election time.
//!
//! Two shape targets:
//!
//! * the proof's mechanism — the three central `b`-nodes keep identical
//!   histories through every round `t < m−1`; the measured divergence round
//!   of the canonical execution must respect `≥ m−1` and grow linearly;
//! * the end-to-end cost — the canonical DRIP's completion round grows
//!   with `m` (superlinearly, since the dedicated algorithm spends
//!   `Θ(m)` phases of growing width — it achieves feasibility, not the
//!   `Ω(n)` floor).

use anon_radio::lower_bounds::{canonical_divergences, g_m_central_pairs};
use radio_graph::families;
use radio_util::stats::loglog_slope;
use radio_util::table::{fmt_f64, Table};

use crate::Effort;

/// Runs E4.
pub fn run(effort: Effort, _seed: u64) -> Vec<Table> {
    let ms: Vec<usize> = match effort {
        Effort::Quick => vec![2, 4, 8],
        Effort::Full => vec![2, 4, 8, 16, 32, 64],
    };

    let mut detail = Table::new(
        "E4: G_m (σ=1) — central-pair symmetry horizon and canonical completion",
        &[
            "m",
            "n",
            "lower bound m−1",
            "divergence(b_m,b_{m+1})",
            "completion round",
            "phases",
        ],
    );

    let mut xs = Vec::new();
    let mut horizon = Vec::new();
    for &m in &ms {
        let config = families::g_m(m);
        let pairs = g_m_central_pairs(m);
        let (execution, divergences) = canonical_divergences(&config, &pairs);
        let d0 = divergences[0].expect("G_m is feasible");
        assert!(d0 >= m as u64 - 1, "Prop 4.1 violated at m={m}");
        let completion = execution.done_round.iter().max().copied().unwrap();
        let phases = radio_classifier::classify(&config).iterations;
        detail.push_row(vec![
            m.to_string(),
            config.size().to_string(),
            (m - 1).to_string(),
            d0.to_string(),
            completion.to_string(),
            phases.to_string(),
        ]);
        xs.push(config.size() as f64);
        horizon.push(d0.max(1) as f64);
    }

    let mut summary = Table::new(
        "E4 summary: log–log slope of the symmetry horizon vs n (claim: ≥ ~1 ⇒ Ω(n))",
        &["series", "slope", "R²"],
    );
    if let Some(fit) = loglog_slope(&xs, &horizon) {
        summary.push_row(vec![
            "divergence round vs n".into(),
            fmt_f64(fit.slope, 3),
            fmt_f64(fit.r2, 3),
        ]);
    }

    vec![detail, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_grows_at_least_linearly() {
        let tables = run(Effort::Quick, 0);
        let summary = &tables[1];
        let slope: f64 = summary.cell(0, 1).unwrap().parse().unwrap();
        assert!(slope >= 0.8, "expected near-linear growth, slope = {slope}");
    }
}
