//! The experiments CLI: regenerates every table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p radio-bench --bin experiments               # all, full effort
//! cargo run --release -p radio-bench --bin experiments -- e4 e5     # a subset
//! cargo run --release -p radio-bench --bin experiments -- --quick   # CI sizes
//! cargo run --release -p radio-bench --bin experiments -- --out results
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;

use radio_bench::{registry, Effort};
use radio_util::rng::DEFAULT_ROOT_SEED;

fn main() {
    let mut effort = Effort::Full;
    let mut seed = DEFAULT_ROOT_SEED;
    let mut out_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => effort = Effort::Quick,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--seed N] [--out DIR] [e1 e2 … e10]\n\
                     runs the paper-claim experiments (all by default) and prints\n\
                     Markdown tables; --out also writes <id>_<k>.md/.csv files"
                );
                return;
            }
            id if id.starts_with('e') => wanted.push(id.to_string()),
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for experiment in registry() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == experiment.id) {
            continue;
        }
        eprintln!("── running {} — {}", experiment.id, experiment.claim);
        let started = std::time::Instant::now();
        let tables = (experiment.run)(effort, seed);
        eprintln!("   done in {:.2?}", started.elapsed());
        println!(
            "## {} — {}\n",
            experiment.id.to_uppercase(),
            experiment.claim
        );
        for (k, table) in tables.iter().enumerate() {
            println!("{}", table.to_markdown());
            if let Some(dir) = &out_dir {
                let stem = format!("{}_{}", experiment.id, k);
                std::fs::write(dir.join(format!("{stem}.md")), table.to_markdown())
                    .expect("write table markdown");
                std::fs::write(dir.join(format!("{stem}.csv")), table.to_csv())
                    .expect("write table csv");
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
