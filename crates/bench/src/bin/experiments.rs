//! The experiments CLI: regenerates every table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p radio-bench --bin experiments               # all, full effort
//! cargo run --release -p radio-bench --bin experiments -- e4 e5     # a subset
//! cargo run --release -p radio-bench --bin experiments -- --quick   # CI sizes
//! cargo run --release -p radio-bench --bin experiments -- --out results
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;

use radio_bench::{registry, Effort};
use radio_util::rng::DEFAULT_ROOT_SEED;

fn main() {
    let mut effort = Effort::Full;
    let mut seed = DEFAULT_ROOT_SEED;
    let mut out_dir: Option<PathBuf> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => effort = Effort::Quick,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--bench-json" => {
                bench_json = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--bench-json needs a path")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--seed N] [--out DIR] [e1 e2 … e10]\n\
                     runs the paper-claim experiments (all by default) and prints\n\
                     Markdown tables; --out also writes <id>_<k>.md/.csv files\n\
                     --bench-json PATH  instead measure the fused batch engine against\n\
                     the one-run-per-worker campaign path and the million-node scale\n\
                     path (CSR-direct + streaming elect at 10⁵/10⁶ nodes), appending\n\
                     one JSON trajectory row per measurement to PATH"
                );
                return;
            }
            id if id.starts_with('e') => wanted.push(id.to_string()),
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = &bench_json {
        bench_batch(path, seed);
        bench_scale(path, seed);
        return;
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for experiment in registry() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == experiment.id) {
            continue;
        }
        eprintln!("── running {} — {}", experiment.id, experiment.claim);
        let started = std::time::Instant::now();
        let tables = (experiment.run)(effort, seed);
        eprintln!("   done in {:.2?}", started.elapsed());
        println!(
            "## {} — {}\n",
            experiment.id.to_uppercase(),
            experiment.claim
        );
        for (k, table) in tables.iter().enumerate() {
            println!("{}", table.to_markdown());
            if let Some(dir) = &out_dir {
                let stem = format!("{}_{}", experiment.id, k);
                std::fs::write(dir.join(format!("{stem}.md")), table.to_markdown())
                    .expect("write table markdown");
                std::fs::write(dir.join(format!("{stem}.csv")), table.to_csv())
                    .expect("write table csv");
            }
        }
    }
}

/// `--bench-json`: time the 10k-rep small-graph elect campaign through
/// the fused batch engine (default size) and through the one-run-per-
/// worker path (`--no-batch`), best of three passes each after a warm-up,
/// and append one machine-readable trajectory row — so future changes can
/// see the engine's perf curve without re-deriving the workload.
fn bench_batch(path: &std::path::Path, seed: u64) {
    use radio_bench::campaign::{
        BatchConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy,
    };
    use radio_sim::{ModelKind, RunOpts};

    let spec = |batch: BatchConfig| CampaignSpec {
        phase: Phase::Elect,
        families: vec![FamilySpec::Path, FamilySpec::Star],
        tags: vec![TagStrategy::Arith { stride: 1 }],
        sizes: vec![8],
        spans: vec![4],
        models: vec![ModelKind::Beeping],
        reps: 5_000,
        seed,
        opts: RunOpts::default(),
        cache: radio_bench::campaign::CacheConfig::default(),
        batch,
    };
    let threads = radio_sim::parallel::default_threads();
    let runs = spec(BatchConfig::default()).total_runs();
    let time = |batch: BatchConfig| -> f64 {
        let mut best = f64::INFINITY;
        for pass in 0..4 {
            let mut runner = CampaignRunner::new(spec(batch), 1);
            let started = std::time::Instant::now();
            runner.run_to_completion(threads);
            let ns = started.elapsed().as_nanos() as f64 / runs as f64;
            if pass > 0 {
                best = best.min(ns); // pass 0 is the warm-up
            }
        }
        best
    };
    let sequential = time(BatchConfig::disabled());
    let batched = time(BatchConfig::default());
    let row = format!(
        "{{\"bench\":\"batch_engine\",\"runs\":{runs},\"threads\":{threads},\
         \"batch_size\":{},\"sequential_ns_per_run\":{:.0},\"batched_ns_per_run\":{:.0},\
         \"speedup\":{:.3}}}\n",
        BatchConfig::DEFAULT_SIZE,
        sequential,
        batched,
        sequential / batched,
    );
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open --bench-json path");
    file.write_all(row.as_bytes()).expect("append bench row");
    eprintln!(
        "batch engine: sequential {:.0} ns/run, batched {:.0} ns/run — {:.2}× \
         ({} runs, {} threads; row appended to {})",
        sequential,
        batched,
        sequential / batched,
        runs,
        threads,
        path.display()
    );
}

/// `--bench-json`: walk the million-node scale path (CSR-direct star
/// generation → classify + compile → streaming length-only elect) at
/// n = 10⁵ and 10⁶ and append one trajectory row per size with the
/// per-node costs and the process peak RSS — the longitudinal record the
/// `scale.rs` bench gates cross-section.
fn bench_scale(path: &std::path::Path, seed: u64) {
    use radio_graph::{tags::TagStrategy, Configuration, FamilySpec};
    use radio_sim::{ModelKind, RunOpts, SimWorkspace};

    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open --bench-json path");
    for n in [100_000usize, 1_000_000] {
        let gen_started = std::time::Instant::now();
        let csr = FamilySpec::Star.build_csr(n, seed).expect("star builds");
        let gen_ns = gen_started.elapsed().as_nanos() as f64 / n as f64;
        let tags = TagStrategy::Extremes.draw(n, 3, &mut radio_util::rng::rng_from(seed));
        let config = Configuration::from_csr(csr, tags).expect("star configuration");
        let mut sim = SimWorkspace::new();
        let elect_started = std::time::Instant::now();
        let dedicated = anon_radio::solve(&config).expect("star elects");
        let outcome = dedicated
            .run_in(
                &mut sim,
                ModelKind::NoCollisionDetection,
                RunOpts::default(),
            )
            .expect("run completes");
        assert!((outcome.leader as usize) < n, "star must elect a leader");
        let elect_ns = elect_started.elapsed().as_nanos() as f64 / n as f64;
        let peak = radio_util::mem::peak_rss_bytes().unwrap_or(0);
        let row = format!(
            "{{\"bench\":\"scale_path\",\"family\":\"star\",\"n\":{n},\
             \"gen_ns_per_node\":{gen_ns:.1},\"elect_ns_per_node\":{elect_ns:.1},\
             \"peak_rss_bytes\":{peak}}}\n",
        );
        file.write_all(row.as_bytes()).expect("append bench row");
        eprintln!(
            "scale path: star n={n}: csr-direct {gen_ns:.1} ns/node, streaming elect \
             {elect_ns:.1} ns/node, peak rss {:.1} MiB (row appended to {})",
            peak as f64 / (1024.0 * 1024.0),
            path.display()
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
