//! Shared workload builders for the experiments: named graph families with
//! controlled `n`, tagging regimes, and channel-model crossings, all
//! seed-deterministic.
//!
//! The family constructors are the campaign layer's
//! [`FamilyKind`](anon_radio::campaign::FamilyKind) axis — this module
//! wraps them in the experiment harness's table-friendly [`Family`] shape
//! (same graphs, same seed-derivation streams, so pre-campaign experiment
//! outputs are unchanged).

use anon_radio::campaign::FamilyKind;
use radio_graph::{tags, Configuration, Graph};
use radio_sim::ModelKind;
use radio_util::rng::{derive, rng_from};

/// A named graph family parameterized by node count.
pub struct Family {
    /// Display name.
    pub name: &'static str,
    /// Constructor (deterministic families ignore the seed).
    pub make: fn(usize, u64) -> Graph,
}

/// Families used by the scaling experiments. Degrees range from constant
/// (path/cycle) through log (hypercube-ish tree) to `n−1` (star), which is
/// what the `O(n³Δ)` bound needs exercised. One entry per
/// [`FamilyKind`], in the campaign axis order.
pub fn scaling_families() -> Vec<Family> {
    // The scaling experiments sweep sizes ≥ 4, which every legacy family
    // accepts; an unrealizable size is a programming error here, so the
    // `FamilyError` surfaces as a panic with the spec's message.
    fn path(n: usize, s: u64) -> Graph {
        FamilyKind::Path.build(n, s).unwrap()
    }
    fn cycle(n: usize, s: u64) -> Graph {
        FamilyKind::Cycle.build(n, s).unwrap()
    }
    fn star(n: usize, s: u64) -> Graph {
        FamilyKind::Star.build(n, s).unwrap()
    }
    fn btree(n: usize, s: u64) -> Graph {
        FamilyKind::BalancedTree.build(n, s).unwrap()
    }
    fn rtree(n: usize, s: u64) -> Graph {
        FamilyKind::RandomTree.build(n, s).unwrap()
    }
    fn gnp(n: usize, s: u64) -> Graph {
        FamilyKind::Gnp.build(n, s).unwrap()
    }
    vec![
        Family {
            name: "path",
            make: path,
        },
        Family {
            name: "cycle",
            make: cycle,
        },
        Family {
            name: "star",
            make: star,
        },
        Family {
            name: "binary-tree",
            make: btree,
        },
        Family {
            name: "random-tree",
            make: rtree,
        },
        Family {
            name: "gnp(8/n)",
            make: gnp,
        },
    ]
}

/// Builds a configuration with random tags in `0..=span`, seeded.
pub fn with_random_tags(graph: Graph, span: u64, seed: u64) -> Configuration {
    tags::random_in_span(graph, span, &mut rng_from(derive(seed, "tags")))
}

/// Builds a configuration with distinct shuffled tags (always feasible in
/// practice), seeded.
pub fn with_distinct_tags(graph: Graph, seed: u64) -> Configuration {
    tags::distinct_shuffled(graph, &mut rng_from(derive(seed, "tags-distinct")))
}

/// Keeps drawing random-tag configurations until one is feasible (bounded
/// attempts); falls back to distinct tags, which break all symmetry.
///
/// All attempts share one validated graph and its frozen CSR — each draw
/// only swaps the tag vector ([`Configuration::retag`]); nothing is cloned
/// on the happy path.
pub fn feasible_with_span(graph: Graph, span: u64, seed: u64) -> Configuration {
    let n = graph.node_count();
    let mut config = Configuration::with_uniform_tags(graph, 0).expect("valid graph");
    for attempt in 0..20u64 {
        // Same derivation chain as `with_random_tags` of the per-attempt
        // seed, so the drawn configurations are unchanged.
        let attempt_seed = derive(derive(seed, &format!("a{attempt}")), "tags");
        let tags = tags::random_tags_in_span(n, span, &mut rng_from(attempt_seed));
        config = config.retag(tags).expect("node count unchanged");
        if radio_classifier::classify(&config).feasible {
            return config;
        }
    }
    with_distinct_tags(config.graph().clone(), seed)
}

/// One cell of a model-crossed sweep: a named configuration paired with
/// the channel model to run it under.
pub struct ModelCell {
    /// Graph family name.
    pub family: &'static str,
    /// Channel model for this cell.
    pub model: ModelKind,
    /// The (seed-deterministic) configuration.
    pub config: Configuration,
}

impl ModelCell {
    /// `family × model` label for tables, e.g. `path/beeping`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.family, self.model)
    }
}

/// Crosses every scaling family at size `n` with every [`ModelKind`]: the
/// sweep grid the model-comparison experiments and benches iterate. Tags
/// are random in `0..=span`; the same configuration (same seed) appears
/// once per model, so model columns are directly comparable.
pub fn model_crossed_cells(n: usize, span: u64, seed: u64) -> Vec<ModelCell> {
    let mut cells = Vec::new();
    for fam in scaling_families() {
        let graph = (fam.make)(n, derive(seed, fam.name));
        let config = with_random_tags(graph, span, derive(seed, fam.name));
        for model in ModelKind::ALL {
            cells.push(ModelCell {
                family: fam.name,
                model,
                config: config.clone(),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::algo::is_connected;
    use radio_graph::generators;

    #[test]
    fn families_build_connected_graphs() {
        for fam in scaling_families() {
            for n in [4usize, 9, 17] {
                let g = (fam.make)(n, 1);
                assert!(is_connected(&g), "{} n={n}", fam.name);
                assert!(g.node_count() >= n.min(3), "{} n={n}", fam.name);
            }
        }
    }

    #[test]
    fn feasible_with_span_is_feasible() {
        for n in [4usize, 8] {
            let c = feasible_with_span(generators::path(n), 3, 99);
            assert!(radio_classifier::classify(&c).feasible);
        }
    }

    #[test]
    fn feasible_with_span_draws_match_the_per_attempt_chain() {
        // The retag-based loop must return exactly what the old
        // clone-per-attempt version did: the first feasible draw of the
        // `derive(seed, "a{k}")` chain (or the distinct-tag fallback).
        let (n, span, seed) = (8usize, 3u64, 99u64);
        let got = feasible_with_span(generators::path(n), span, seed);
        let chain: Vec<Configuration> = (0..20u64)
            .map(|a| with_random_tags(generators::path(n), span, derive(seed, &format!("a{a}"))))
            .collect();
        match chain
            .iter()
            .find(|c| radio_classifier::classify(c).feasible)
        {
            Some(first_feasible) => assert_eq!(got, *first_feasible),
            None => assert_eq!(got, with_distinct_tags(generators::path(n), seed)),
        }
    }

    #[test]
    fn model_crossed_cells_cover_the_full_grid() {
        let cells = model_crossed_cells(8, 3, 42);
        assert_eq!(cells.len(), scaling_families().len() * ModelKind::ALL.len());
        // same configuration across the three models of one family
        for chunk in cells.chunks(ModelKind::ALL.len()) {
            assert!(chunk.windows(2).all(|w| w[0].config == w[1].config));
            assert_eq!(chunk[0].model, ModelKind::NoCollisionDetection);
        }
        assert!(cells[0].label().contains('/'));
        // and each cell actually runs under its model
        for cell in cells.iter().take(6) {
            let ex = cell
                .model
                .run(
                    &cell.config,
                    &radio_sim::drip::WaitThenTransmitFactory {
                        wait: 0,
                        msg: radio_sim::Msg::ONE,
                        lifetime: 8,
                    },
                    radio_sim::RunOpts::default(),
                )
                .unwrap();
            assert_eq!(ex.node_count(), cell.config.size());
        }
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let a = with_random_tags(generators::path(10), 4, 5);
        let b = with_random_tags(generators::path(10), 4, 5);
        assert_eq!(a, b);
        let c = with_random_tags(generators::path(10), 4, 6);
        assert!(a != c || a.tags() == c.tags()); // overwhelmingly different
    }
}
