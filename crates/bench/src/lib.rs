//! Experiment harness regenerating every claim of the paper as a table.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems, not
//! measured tables. Following `DESIGN.md §5`, each experiment here
//! regenerates the *content* of one claim — measured scaling against the
//! proved bound, constructed counterexamples, feasibility landscapes — so
//! the repository's `EXPERIMENTS.md` can report paper-vs-measured per
//! claim.
//!
//! | id  | claim | module |
//! |-----|-------|--------|
//! | E1  | Thm 3.17 / Lemma 3.5 (`O(n³Δ)` classifier) | [`experiments::e1_classifier_scaling`] |
//! | E2  | Cor 3.3 + Lemma 3.4 (≤ ⌈n/2⌉ iterations)  | [`experiments::e2_iterations`] |
//! | E3  | Thm 3.15 / Lemma 3.10 (`O(n²σ)` election) | [`experiments::e3_election_time`] |
//! | E4  | Prop 4.1 (`Ω(n)`, family `G_m`)           | [`experiments::e4_omega_n`] |
//! | E5  | Lemma 4.2 / Prop 4.3 (`Ω(σ)`, `H_m`)      | [`experiments::e5_omega_sigma`] |
//! | E6  | Prop 4.4 (no universal algorithm)          | [`experiments::e6_universal`] |
//! | E7  | Prop 4.5 (no distributed decision)         | [`experiments::e7_distributed`] |
//! | E8  | feasibility landscape (Sec. 3, implied)    | [`experiments::e8_atlas`] |
//! | E9  | open problem #1 ablation (ref vs fast)     | [`experiments::e9_ablation`] |
//! | E10 | substrate throughput + parallel speedup    | [`experiments::e10_throughput`] |
//! | E11 | small-configuration feasibility census     | [`experiments::e11_census`] |
//! | E12 | 1-WL uniqueness vs radio feasibility       | [`experiments::e12_wl_gap`] |
//! | E13 | wake-up jitter sensitivity                 | [`experiments::e13_jitter`] |
//! | E14 | time-leap scheduler speedup                | [`experiments::e14_time_leap`] |
//!
//! Run them all: `cargo run --release -p radio-bench --bin experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod workloads;

use radio_util::table::Table;

/// Effort preset for the experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sizes — finishes in seconds, used by tests and CI.
    Quick,
    /// The sizes reported in `EXPERIMENTS.md`.
    Full,
}

/// An experiment: a stable id, the paper claim it regenerates, and a
/// runner.
pub struct Experiment {
    /// Stable identifier (`e1` … `e10`).
    pub id: &'static str,
    /// The claim being reproduced.
    pub claim: &'static str,
    /// Runner producing one or more tables.
    pub run: fn(Effort, u64) -> Vec<Table>,
}

/// The full experiment registry, in order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            claim: "Thm 3.17 / Lemma 3.5: Classifier runs in O(n³Δ)",
            run: experiments::e1_classifier_scaling::run,
        },
        Experiment {
            id: "e2",
            claim: "Cor 3.3 + Lemma 3.4: ≤ ⌈n/2⌉ strictly-refining iterations",
            run: experiments::e2_iterations::run,
        },
        Experiment {
            id: "e3",
            claim: "Thm 3.15 / Lemma 3.10: dedicated election in O(n²σ) rounds",
            run: experiments::e3_election_time::run,
        },
        Experiment {
            id: "e4",
            claim: "Prop 4.1: Ω(n) election time on G_m (span 1)",
            run: experiments::e4_omega_n::run,
        },
        Experiment {
            id: "e5",
            claim: "Lemma 4.2 / Prop 4.3: Ω(σ) election time on H_m (n = 4)",
            run: experiments::e5_omega_sigma::run,
        },
        Experiment {
            id: "e6",
            claim: "Prop 4.4: no universal election algorithm",
            run: experiments::e6_universal::run,
        },
        Experiment {
            id: "e7",
            claim: "Prop 4.5: no distributed feasibility decision",
            run: experiments::e7_distributed::run,
        },
        Experiment {
            id: "e8",
            claim: "Feasibility landscape across topologies × wake-up patterns",
            run: experiments::e8_atlas::run,
        },
        Experiment {
            id: "e9",
            claim: "Open problem #1 ablation: reference vs hash refinement",
            run: experiments::e9_ablation::run,
        },
        Experiment {
            id: "e10",
            claim: "Simulator throughput and parallel batch speedup",
            run: experiments::e10_throughput::run,
        },
        Experiment {
            id: "e11",
            claim: "Exhaustive small-configuration feasibility census",
            run: experiments::e11_census::run,
        },
        Experiment {
            id: "e12",
            claim: "Structural (1-WL) uniqueness vs radio feasibility",
            run: experiments::e12_wl_gap::run,
        },
        Experiment {
            id: "e13",
            claim: "Wake-up jitter sensitivity of feasibility and leader identity",
            run: experiments::e13_jitter::run,
        },
        Experiment {
            id: "e14",
            claim: "Time-leap scheduler: event-bound execution of silence-dominated spans",
            run: experiments::e14_time_leap::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let reg = registry();
        assert_eq!(reg.len(), 14);
        for (i, e) in reg.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", i + 1));
        }
    }

    #[test]
    fn every_experiment_runs_quick() {
        for e in registry() {
            let tables = (e.run)(Effort::Quick, 7);
            assert!(!tables.is_empty(), "{} produced no tables", e.id);
            for t in &tables {
                assert!(!t.is_empty(), "{}: table '{}' has no rows", e.id, t.title());
            }
        }
    }
}
