//! Watch `Classifier` refine equivalence classes, iteration by iteration.
//!
//! Runs the centralized feasibility decision on three instructive
//! configurations and prints the full refinement trace:
//!
//! * `G_3` (Prop 4.1) — a 13-node path with span 1 where the classes peel
//!   inward from the ends for 3 iterations until the centre is alone;
//! * `S_2` (Prop 4.5) — the mirror-symmetric path whose partition freezes
//!   at two 2-node classes: infeasible;
//! * a random tree with random tags.
//!
//! ```sh
//! cargo run --example classifier_trace
//! ```

use radio_classifier::{classify, trace};
use radio_graph::{families, generators, tags};
use radio_util::rng::rng_from;

fn main() {
    let g3 = families::g_m(3);
    println!("{}", trace::render(&g3, &classify(&g3)));
    println!();

    let s2 = families::s_m(2);
    println!("{}", trace::render(&s2, &classify(&s2)));
    println!();

    let mut rng = rng_from(7);
    let tree = generators::random_tree(9, &mut rng);
    let config = tags::random_in_span(tree, 2, &mut rng);
    println!("{}", trace::render(&config, &classify(&config)));
}
