//! Token-ring recovery — the scenario that motivated leader election in the
//! first place (Le Lann 1977, cited as the paper's origin story).
//!
//! A ring of identical radio stations coordinates medium access by
//! circulating a token; the station holding the token transmits. After a
//! power incident the token is lost and the stations crash-reboot at
//! slightly different times. Nobody has an id — the *reboot times* are the
//! only asymmetry. This example uses the paper's machinery to (a) check
//! the reboot pattern actually breaks the ring's symmetry, and (b) elect
//! the new token owner, narrating the radio traffic.
//!
//! ```sh
//! cargo run --example token_ring_recovery
//! ```

use anon_radio_repro::prelude::*;
use radio_sim::Executor;

fn main() {
    let n = 8;
    // Reboot rounds measured by the (invisible) global clock. Two stations
    // happen to reboot simultaneously — fine, as long as the multiset of
    // wake-ups breaks every rotational/reflective symmetry of the ring.
    let reboot_rounds = vec![3, 0, 2, 5, 0, 4, 1, 2];
    let ring = generators::cycle(n);
    let config = Configuration::new(ring, reboot_rounds).expect("valid configuration");

    println!(
        "ring of {n} anonymous stations, reboot rounds {:?}",
        config.tags()
    );
    println!("span σ = {} (largest reboot offset)", config.span());
    println!();

    match solve(&config) {
        Err(infeasible) => {
            println!("cannot recover a token owner: {infeasible}");
            println!("(the reboot pattern left the ring symmetric — wait for another reboot)");
        }
        Ok(dedicated) => {
            println!(
                "recovery is possible; dedicated protocol has {} phase(s), \
                 every station done after {} local rounds",
                dedicated.schedule().phases(),
                dedicated.schedule().done_local(),
            );

            // Narrate the radio traffic of the recovery.
            let factory = dedicated.factory();
            let execution = Executor::run(&config, &factory, RunOpts::default().traced())
                .expect("canonical DRIP terminates");
            let trace = execution.trace.as_ref().expect("tracing enabled");
            println!("radio traffic ({} eventful rounds):", trace.events.len());
            for event in trace.events.iter().take(12) {
                println!("  {}", event.render());
            }
            if trace.events.len() > 12 {
                println!("  … {} more", trace.events.len() - 12);
            }

            let report = dedicated
                .run()
                .expect("feasible rings elect exactly one owner");
            println!();
            println!(
                "station v{} holds the new token (elected in {} global rounds, {} transmissions)",
                report.leader, report.completion_round, report.transmissions
            );
        }
    }

    // For contrast: a perfectly synchronized reboot is unrecoverable.
    println!();
    let synced = Configuration::with_uniform_tags(generators::cycle(n), 0).unwrap();
    println!(
        "if all {n} stations had rebooted in the same round: feasible? {}",
        is_feasible(&synced)
    );
}
