//! Sensor-field sink election — a deployment-wave scenario.
//!
//! A drone flies over a field dropping identical radio sensors arranged in
//! a grid; each sensor powers on the moment it lands, so wake-up times
//! follow the flight path (a BFS wave from the drop corner, here with some
//! jitter). The sensors have no serial numbers — before any data can be
//! collected, they must elect a *sink* using wake-up timing alone.
//!
//! The example also shows the flip side: a field activated by a single
//! broadcast pulse (all sensors wake together) can never elect a sink,
//! and the census-backed remedy — adding any asymmetric jitter — fixes it.
//!
//! ```sh
//! cargo run --example sensor_field
//! ```

use anon_radio_repro::prelude::*;
use radio_graph::tags;
use radio_util::rng::rng_from;
use rand::Rng;

fn main() {
    let (rows, cols) = (4, 5);
    let field = generators::grid(rows, cols);
    println!(
        "sensor field: {rows}×{cols} grid, {} radio sensors, no ids",
        rows * cols
    );

    // Deployment wave: distance from the drop corner, 2 rounds per hop,
    // plus ±1 round of landing jitter.
    let mut rng = rng_from(0xD20);
    let wave = tags::bfs_wave(field.clone(), 2);
    let jittered: Vec<u64> = wave
        .tags()
        .iter()
        .map(|&t| t + rng.random_range(0..=2u64))
        .collect();
    let config = Configuration::new(field.clone(), jittered).expect("grid is connected");
    let config = config.normalize();
    println!("wake-up rounds (wave + jitter): {:?}", config.tags());

    match anon_radio_repro::core::elect_leader(&config) {
        Ok(report) => {
            let (r, c) = (report.leader as usize / cols, report.leader as usize % cols);
            println!(
                "sink elected: sensor v{} at grid position ({r},{c}) — \
                 {} phases, finished by global round {}",
                report.leader, report.phases, report.completion_round
            );
        }
        Err(e) => println!("deployment wave failed to break symmetry: {e}"),
    }

    // The broadcast-pulse anti-pattern.
    println!();
    let pulse = Configuration::with_uniform_tags(field.clone(), 0).unwrap();
    println!(
        "broadcast-pulse activation (all sensors wake in round 0): feasible? {}",
        is_feasible(&pulse)
    );

    // Remedy: even one sensor waking one round late can be enough — if it
    // breaks the grid's symmetries.
    let mut one_late = vec![0u64; rows * cols];
    one_late[7] = 1; // an off-axis sensor: no grid symmetry fixes index 7
    let patched = Configuration::new(field, one_late).unwrap();
    println!(
        "same field with sensor v7 waking 1 round late: feasible? {}",
        is_feasible(&patched)
    );
    if let Ok(report) = anon_radio_repro::core::elect_leader(&patched) {
        println!(
            "sink: v{} after {} rounds — a single round of jitter carries the day",
            report.leader, report.completion_round
        );
    }
}
