//! The paper's impossibility results, demonstrated live.
//!
//! * **Proposition 4.4** — no universal leader-election algorithm: for each
//!   candidate in the gallery, find its silence-breaking round `t` and
//!   watch it fail on the feasible 4-node configuration `H_{t+1}`.
//! * **Proposition 4.5** — no distributed feasibility decision: the same
//!   `t` makes every node's history identical on feasible `H_{t+1}` and
//!   infeasible `S_{t+1}`.
//!
//! ```sh
//! cargo run --example impossibility_live
//! ```

use anon_radio::distributed::refute_distributed_decision;
use anon_radio::universal::{gallery, refute_universal, Refutation};
use radio_graph::families;
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::Msg;

fn main() {
    println!("=== Proposition 4.4: every universal candidate fails ===\n");
    for candidate in gallery() {
        match refute_universal(&candidate, 10_000) {
            Refutation::NeverTransmits { probed_rounds } => {
                println!(
                    "{:<24} never transmits in {probed_rounds} rounds of silence → \
                     cannot break symmetry anywhere",
                    candidate.name
                );
            }
            Refutation::FailsOn {
                t,
                m,
                leaders,
                symmetric_pairs,
            } => {
                println!(
                    "{:<24} breaks silence at local round t={t} → on H_{m} \
                     (tags [{}, 0, 0, {}]) it elects {} leader(s) {:?}",
                    candidate.name,
                    m,
                    m + 1,
                    leaders.len(),
                    leaders,
                );
                println!(
                    "{:<24} history pairs equal? a=d: {}, b=c: {}",
                    "", symmetric_pairs[0], symmetric_pairs[1]
                );
            }
        }
    }

    println!("\n=== Proposition 4.5: feasibility cannot be decided distributively ===\n");
    let probe = WaitThenTransmitFactory {
        wait: 2,
        msg: Msg::ONE,
        lifetime: 16,
    };
    let refutation = refute_distributed_decision(&probe, 10_000).expect("probe transmits");
    println!(
        "DRIP 'wait-then-transmit(2)' breaks silence at t={}; compare H_{} vs S_{}:",
        refutation.t, refutation.m, refutation.m
    );
    println!(
        "  H_{} feasible: {}   S_{} feasible: {}",
        refutation.m, refutation.h_feasible, refutation.m, refutation.s_feasible
    );
    for (v, name) in families::FOUR_NODE_NAMES.iter().enumerate() {
        println!(
            "  node {name}: history on H = history on S? {}   ({})",
            refutation.histories_identical[v],
            refutation.h_histories[v].render()
        );
    }
    println!();
    println!("identical per-node histories force identical verdicts — any distributed");
    println!("decision algorithm is wrong on one of the two configurations.  ∎");
}
