//! Feasibility atlas: which (topology × wake-up pattern) combinations admit
//! deterministic leader election?
//!
//! Sweeps graph families against tag strategies and prints the fraction of
//! feasible configurations, reproducing the qualitative landscape implied
//! by the paper's Section 3: symmetry in both topology *and* timing kills
//! feasibility; distinct timing nearly always rescues it.
//!
//! ```sh
//! cargo run --release --example feasibility_atlas
//! ```

use anon_radio_repro::prelude::*;
use radio_graph::tags;
use radio_util::rng::{derive, rng_from, DEFAULT_ROOT_SEED};
use radio_util::table::Table;

const TRIALS: usize = 30;

fn main() {
    let strategies: Vec<&str> = vec!["uniform", "coin-flip σ=1", "random σ=3", "distinct"];
    let mut table = Table::new(
        format!("feasible fraction over {TRIALS} seeds (n = 12)"),
        &[
            "family",
            strategies[0],
            strategies[1],
            strategies[2],
            strategies[3],
        ],
    );

    type GraphMaker = Box<dyn Fn() -> Graph>;
    let families: Vec<(&str, GraphMaker)> = vec![
        ("path", Box::new(|| generators::path(12))),
        ("cycle", Box::new(|| generators::cycle(12))),
        ("star", Box::new(|| generators::star(12))),
        ("grid 3×4", Box::new(|| generators::grid(3, 4))),
        ("complete", Box::new(|| generators::complete(12))),
        ("binary tree", Box::new(|| generators::balanced_tree(12, 2))),
    ];

    for (name, make) in &families {
        let mut row = vec![name.to_string()];
        for strategy in &strategies {
            let mut feasible = 0usize;
            for trial in 0..TRIALS {
                let seed = derive(
                    DEFAULT_ROOT_SEED,
                    &format!("atlas/{name}/{strategy}/{trial}"),
                );
                let mut rng = rng_from(seed);
                let config = match *strategy {
                    "uniform" => tags::uniform((make)(), 0),
                    "coin-flip σ=1" => tags::coin_flip((make)(), 1, &mut rng),
                    "random σ=3" => tags::random_in_span((make)(), 3, &mut rng),
                    "distinct" => tags::distinct_shuffled((make)(), &mut rng),
                    _ => unreachable!(),
                };
                if is_feasible(&config) {
                    feasible += 1;
                }
            }
            row.push(format!("{:.2}", feasible as f64 / TRIALS as f64));
        }
        table.push_row(row);
    }

    println!("{}", table.to_markdown());
    println!("reading: 0.00 = never feasible, 1.00 = always. Uniform wake-ups are never");
    println!("feasible (no symmetry breaker at all); distinct wake-ups almost always are.");
}
