//! Quickstart: decide feasibility and elect a leader on a small anonymous
//! radio network.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use anon_radio_repro::prelude::*;

fn main() {
    // A 6-node path where nodes wake up at staggered times. Wake-up time is
    // the ONLY symmetry breaker available in this model — nodes have no ids.
    let graph = generators::path(6);
    let config = Configuration::new(graph, vec![0, 2, 1, 4, 0, 3]).expect("valid configuration");
    println!("configuration: {config}");
    println!("tags by node:  {:?}", config.tags());

    // 1. Feasibility (Theorem 3.17): polynomial-time central decision.
    if !is_feasible(&config) {
        println!("leader election is IMPOSSIBLE here — no algorithm can break the symmetry");
        return;
    }
    println!("feasible: yes — compiling the dedicated algorithm");

    // 2. Compile the dedicated algorithm (D_G, f_G) (Theorem 3.15)…
    let dedicated = solve(&config).expect("checked feasible above");
    println!(
        "canonical DRIP: {} phase(s), terminates at local round {}",
        dedicated.schedule().phases(),
        dedicated.schedule().done_local()
    );
    println!(
        "classifier predicts leader: v{}",
        dedicated.predicted_leader()
    );

    // 3. …and run it in the radio-model simulator.
    let report = dedicated
        .run()
        .expect("dedicated algorithms elect exactly one leader");
    println!(
        "elected leader: v{} (n = {}, σ = {}, {} transmissions, all nodes done by global round {})",
        report.leader, report.n, report.sigma, report.transmissions, report.completion_round
    );

    // A fully symmetric configuration, for contrast: everyone wakes at once.
    let symmetric =
        Configuration::with_uniform_tags(generators::cycle(5), 0).expect("valid configuration");
    println!();
    println!(
        "contrast — {symmetric}: feasible? {}",
        is_feasible(&symmetric)
    );
    println!("(with identical wake-ups, all nodes transmit or listen in lock-step forever)");
}
